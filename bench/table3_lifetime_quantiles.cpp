//===- bench/table3_lifetime_quantiles.cpp - Reproduce Table 3 -------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Reproduces Table 3: byte-weighted quantiles of the object-lifetime
// distribution of each program.  Lifetimes are measured in bytes allocated;
// objects alive at exit count as dying at exit (hence each program's
// maximum is close to its total allocation).  Both the exact quantiles and
// the streaming P-squared histogram approximation are shown — the paper
// notes the approximation can drift (its GHOST 75% entry).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Profiler.h"
#include "quantile/QuantileHistogram.h"
#include "support/TableFormatter.h"

#include <algorithm>
#include <iostream>
#include <utility>
#include <vector>

using namespace lifepred;

namespace {

/// Exact byte-weighted quantiles of a trace's lifetime distribution.
std::vector<uint64_t> exactByteQuantiles(const AllocationTrace &Trace,
                                         const std::vector<double> &Phis) {
  std::vector<std::pair<uint64_t, uint32_t>> LifetimeAndSize;
  LifetimeAndSize.reserve(Trace.size());
  uint64_t FinalClock = Trace.totalBytes();
  uint64_t Clock = 0;
  for (const AllocRecord &Record : Trace.records()) {
    Clock += Record.Size;
    LifetimeAndSize.emplace_back(
        effectiveLifetime(Record, Clock, FinalClock), Record.Size);
  }
  std::sort(LifetimeAndSize.begin(), LifetimeAndSize.end());

  std::vector<uint64_t> Result;
  uint64_t Total = Trace.totalBytes();
  size_t Index = 0;
  uint64_t Cumulative = 0;
  for (double Phi : Phis) {
    auto Target = static_cast<uint64_t>(Phi * static_cast<double>(Total));
    while (Index < LifetimeAndSize.size() && Cumulative < Target)
      Cumulative += LifetimeAndSize[Index++].second;
    size_t At = Index == 0 ? 0 : Index - 1;
    Result.push_back(LifetimeAndSize[At].first);
  }
  return Result;
}

/// P-squared approximation, byte-weighted by adding each lifetime once per
/// 32-byte chunk of the object.
std::vector<uint64_t> p2ByteQuantiles(const AllocationTrace &Trace,
                                      const std::vector<double> &Phis) {
  QuantileHistogram Histogram(8);
  uint64_t FinalClock = Trace.totalBytes();
  uint64_t Clock = 0;
  for (const AllocRecord &Record : Trace.records()) {
    Clock += Record.Size;
    uint64_t Lifetime = effectiveLifetime(Record, Clock, FinalClock);
    uint32_t Chunks = (Record.Size + 31) / 32;
    for (uint32_t C = 0; C < Chunks; ++C)
      Histogram.add(static_cast<double>(Lifetime));
  }
  std::vector<uint64_t> Result;
  for (double Phi : Phis)
    Result.push_back(static_cast<uint64_t>(Histogram.quantile(Phi)));
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  printBanner("Table 3", "quantile histograms of object lifetimes (bytes)",
              Options);

  std::vector<double> Phis = {0.0, 0.25, 0.5, 0.75, 1.0};
  TableFormatter Table({"Program", "Kind", "0%(min)", "25%", "50%(med)",
                        "75%", "100%(max)"});

  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    const PaperProgramData *Paper = paperData(Traces.Model.Name);

    std::vector<uint64_t> Exact = exactByteQuantiles(Traces.Train, Phis);
    Table.beginRow();
    Table.addCell(Traces.Model.Name);
    Table.addCell("exact");
    for (uint64_t Q : Exact)
      Table.addInt(static_cast<int64_t>(Q));

    std::vector<uint64_t> Approx = p2ByteQuantiles(Traces.Train, Phis);
    Table.beginRow();
    Table.addCell("");
    Table.addCell("p2-histogram");
    for (uint64_t Q : Approx)
      Table.addInt(static_cast<int64_t>(Q));

    Table.beginRow();
    Table.addCell("");
    Table.addCell("paper");
    for (double Q : Paper->LifetimeQuantiles)
      Table.addInt(static_cast<int64_t>(Q));
  }

  Table.print(std::cout);
  return 0;
}
