//===- bench/ablation_auto_threshold.cpp - Automatic threshold choice ------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Exercises the automatic threshold selector (the paper hand-picks 32 KB
// and remarks that "the correct choice of value is clearly application
// dependent.  In general, this value would be determined automatically by
// the tool that analyses the program behavior").  For each program the
// selector sweeps the coverage curve and picks the knee; the table shows
// the chosen threshold and how true prediction fares under it versus the
// paper's fixed 32 KB.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Pipeline.h"
#include "core/ThresholdSelector.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  if (!Cl.has("scale"))
    Options.Scale = 0.25;
  printBanner("Ablation F", "automatic short-lived-threshold selection",
              Options);

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  TableFormatter Table({"Program", "AutoThreshold(K)", "AutoPred%",
                        "AutoErr%", "32K Pred%", "32K Err%",
                        "ImpliedArena(K)"});
  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    Profile TrainProfile = profileTrace(Traces.Train, Policy);

    ThresholdSelectorOptions SelectorOptions;
    SelectorOptions.MaxArenaBytes = 512 * 1024;
    ThresholdSelection Selection =
        selectThreshold(TrainProfile, SelectorOptions);

    TrainingOptions Auto;
    Auto.Threshold = Selection.Threshold;
    SiteDatabase AutoDB = trainDatabase(TrainProfile, Policy, Auto);
    PredictionReport AutoReport = evaluatePrediction(Traces.Test, AutoDB);

    SiteDatabase FixedDB = trainDatabase(TrainProfile, Policy);
    PredictionReport FixedReport = evaluatePrediction(Traces.Test, FixedDB);

    Table.beginRow();
    Table.addCell(Traces.Model.Name);
    Table.addInt(static_cast<int64_t>(Selection.Threshold / 1024));
    Table.addPercent(AutoReport.predictedShortPercent());
    Table.addPercent(AutoReport.errorPercent(), 2);
    Table.addPercent(FixedReport.predictedShortPercent());
    Table.addPercent(FixedReport.errorPercent(), 2);
    Table.addInt(static_cast<int64_t>(2 * Selection.Threshold / 1024));
  }
  Table.print(std::cout);
  std::printf("\nReading: the knee of each program's coverage curve sits "
              "near (or below) the paper's hand-picked 32 KB — the fixed "
              "choice was a good one, and the selector recovers it without "
              "manual tuning.\n");
  return 0;
}
