//===- bench/ObservatoryBench.h - Heap observatory bench hooks --*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The --observe surface shared by the bench binaries.  BenchObservatory
/// pools one fragmentation probe and one latency recorder per (program,
/// allocator family) — plus a single heatmap riding the first program's
/// first-fit replay — and hooks them into the SimTelemetry of each untimed
/// instrumented replay.  The simulators export the probes into that
/// replay's registry under the family prefix, so the established
/// jobs-invariance discipline (per-program registries merged in program
/// order) covers every observatory key without extra argument.
///
/// Benches that run instrumented replays of their own (bench_sim_throughput)
/// attach() into that pass; table benches call runObservatoryPass(), which
/// replays all four families itself.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_BENCH_OBSERVATORYBENCH_H
#define LIFEPRED_BENCH_OBSERVATORYBENCH_H

#include "BenchCommon.h"

#include "telemetry/FragmentationProbe.h"
#include "telemetry/HeapHeatmap.h"
#include "telemetry/LatencyRecorder.h"

#include <memory>
#include <vector>

namespace lifepred {

struct SimTelemetry;

/// Observatory sink pool for one bench run.  Construction with --observe
/// off yields an empty pool whose methods are all no-ops, so callers wire
/// it unconditionally.
class BenchObservatory {
public:
  /// The four allocator families the observatory covers.  Streamed benches
  /// use the FirstFit/Bsd slots; unattached slots simply never export.
  enum Family : unsigned { FirstFit = 0, Bsd = 1, Arena = 2, Multi = 3 };
  static constexpr unsigned FamilyCount = 4;

  BenchObservatory(const BenchOptions &Options, size_t ProgramCount);

  bool enabled() const { return !Probes.empty(); }

  /// Attaches the (program, family) probe pair to \p Telemetry; program
  /// 0's FirstFit replay additionally carries the heatmap.  No-op when
  /// --observe is off.
  void attach(SimTelemetry &Telemetry, size_t Program, Family F);

  FragmentationProbe *probe(size_t Program, Family F) {
    return enabled() ? &Probes[Program * FamilyCount + F] : nullptr;
  }
  LatencyRecorder *latency(size_t Program, Family F) {
    return enabled() ? &Latencies[Program * FamilyCount + F] : nullptr;
  }
  HeapHeatmap *heatmap() { return Map.get(); }

  /// Prints the observatory summary table (families with zero samples are
  /// skipped) and writes the heatmap JSON to Options.HeatmapOutPath.  Call
  /// once, after every instrumented replay has run.
  void finish(const BenchOptions &Options,
              const std::vector<ProgramTraces> &All);

private:
  uint64_t Stride = 0;
  std::vector<FragmentationProbe> Probes;
  std::vector<LatencyRecorder> Latencies;
  std::unique_ptr<HeapHeatmap> Map;
};

/// Standalone observatory pass for benches with no instrumented replay of
/// their own: per program, compiles the test trace, trains the site and
/// class databases, replays all four allocator families with observatory
/// sinks attached, and merges the per-program registries into \p Registry
/// in program order.  Returns false — doing nothing — when --observe is
/// off; callers attach \p Registry to their JSON report on true.
bool runObservatoryPass(const BenchOptions &Options,
                        const std::vector<ProgramTraces> &All,
                        ThreadPool &Pool, StatsRegistry &Registry);

} // namespace lifepred

#endif // LIFEPRED_BENCH_OBSERVATORYBENCH_H
