//===- bench/lifepred_fuzz.cpp - Shadow-heap fuzz harness ------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLI driver for the verify layer: generates adversarial traces from the
/// fuzz profiles, replays each through every allocator family and both
/// replay paths under the shadow-heap oracle, and minimizes any violating
/// trace into a corpus file that replays forever as a ctest case.
///
///   lifepred_fuzz --runs=200 --objects=4000 --seed=1
///   lifepred_fuzz --profile=fragmentation --runs=20
///   lifepred_fuzz --replay=tests/corpus/foo.lptrace
///   lifepred_fuzz --emit-corpus=tests/corpus --objects=256
///   lifepred_fuzz --runs=24 --json=FUZZ_smoke.json   # CI smoke + gate
///   lifepred_fuzz --mode=onlinepred --runs=20        # online-route battery
///
/// --mode=onlinepred swaps the shadow-heap oracle for the online-
/// prediction differential battery: every adversarial profile is
/// self-trained into a database, the warm-started online model is
/// compiled over both replay drivers, and the run fails unless (a) the
/// oracle-path and compiled-path route plans are value-identical, (b) a
/// frozen model reproduces the static PredictedShortBits bit-for-bit,
/// and (c) online and static routings both partition the trace's bytes
/// exactly (arena + general == total on each side).
///
/// Exit status: 0 = no violations, 1 = violations found, 2 = usage error.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/Pipeline.h"
#include "runtime/Retrainer.h"
#include "sim/CompiledPrediction.h"
#include "trace/TraceBinaryIO.h"
#include "verify/Shrinker.h"
#include "verify/TraceFuzzer.h"

#include <cstdio>
#include <fstream>
#include <map>

using namespace lifepred;

namespace {

/// Minimizes \p Trace under shadowCheckAll and writes it to \p Dir.
void minimizeAndSave(const AllocationTrace &Trace, const std::string &Dir,
                     const std::string &Stem) {
  auto StillFails = [](const AllocationTrace &T) {
    return !shadowCheckAll(T).clean();
  };
  ShrinkStats Stats;
  AllocationTrace Minimal = shrinkTrace(Trace, StillFails, 2000, &Stats);
  std::string Path;
  if (writeCorpusTrace(Minimal, Dir, Stem, Path))
    std::printf("  minimized %zu -> %zu records (%llu probes): %s\n",
                Trace.size(), Minimal.size(),
                static_cast<unsigned long long>(Stats.Probes), Path.c_str());
  else
    std::printf("  FAILED to write minimized repro to %s\n", Dir.c_str());
}

int replayFile(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    std::printf("cannot open %s\n", Path.c_str());
    return 2;
  }
  std::optional<AllocationTrace> Trace = readTraceBinary(IS);
  if (!Trace) {
    std::printf("%s: not a valid binary trace\n", Path.c_str());
    return 2;
  }
  ShadowReport Report = shadowCheckAll(*Trace);
  std::printf("%s: %zu records, %s\n", Path.c_str(), Trace->size(),
              Report.summary().c_str());
  for (const Violation &V : Report.Violations)
    std::printf("  op %llu  %s: %s\n",
                static_cast<unsigned long long>(V.Op), V.Invariant.c_str(),
                V.Detail.c_str());
  return Report.clean() ? 0 : 1;
}

int emitCorpus(const std::string &Dir, uint64_t Seed, size_t Objects) {
  for (FuzzProfile Profile : allProfiles()) {
    AllocationTrace Trace = generateFuzzTrace(Profile, Seed, Objects);
    std::string Stem =
        std::string(profileName(Profile)) + "_seed" + std::to_string(Seed);
    std::string Path;
    if (!writeCorpusTrace(Trace, Dir, Stem, Path)) {
      std::printf("FAILED to write %s\n", Stem.c_str());
      return 2;
    }
    std::printf("wrote %s (%zu records)\n", Path.c_str(), Trace.size());
  }
  return 0;
}

/// One onlinepred-mode case: the online-route differential battery over a
/// generated adversarial trace.  Returns the number of cross-check
/// failures after printing each; 0 means the case passed.
struct OnlineFuzzResult {
  uint64_t Events = 0;
  uint64_t Failures = 0;
};

OnlineFuzzResult runOnlineFuzzCase(FuzzProfile Shape, uint64_t Seed,
                                   size_t Objects) {
  OnlineFuzzResult Result;
  AllocationTrace Trace = generateFuzzTrace(Shape, Seed, Objects);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  Profile TrainProfile = profileTrace(Trace, Policy);
  SiteDatabase DB = trainDatabase(TrainProfile, Policy);
  CompiledTrace Compiled(Trace, Policy);
  Result.Events = replayEventCount(Trace);

  auto fail = [&](const char *Check, const std::string &Detail) {
    ++Result.Failures;
    std::printf("ONLINE VIOLATION profile %s seed %llu [%s]: %s\n",
                profileName(Shape), static_cast<unsigned long long>(Seed),
                Check, Detail.c_str());
  };

  // (a) The causal model compiled over the flat schedule and driven from
  // the priority-queue oracle must produce the same frozen artifact.
  OnlinePredictorConfig Config;
  Config.WarmStart = &DB;
  OnlineRoutePlan CompiledPlan = compileOnlineRoutes(Compiled, Config);
  OnlineRoutePlan OraclePlan = replayOnlineRoutesOracle(Trace, Policy, Config);
  if (!(CompiledPlan == OraclePlan))
    fail("plan-differential",
         "oracle-path and compiled-path route plans differ (epochs " +
             std::to_string(OraclePlan.Epochs) + " vs " +
             std::to_string(CompiledPlan.Epochs) + ", retrains " +
             std::to_string(OraclePlan.Retrains.size()) + " vs " +
             std::to_string(CompiledPlan.Retrains.size()) + ")");

  // (b) Frozen, the warm-started model IS the static predictor.
  OnlinePredictorConfig Frozen = Config;
  Frozen.ReactToDrift = false;
  OnlineRoutePlan FrozenPlan = compileOnlineRoutes(Compiled, Frozen);
  PredictedShortBits StaticBits(Compiled, DB);
  for (size_t Id = 0; Id < Trace.size(); ++Id) {
    if (FrozenPlan.testShort(Id) != StaticBits.test(Id)) {
      fail("frozen-differential",
           "record " + std::to_string(Id) +
               " frozen-online route disagrees with static bits");
      break;
    }
  }
  if (FrozenPlan.Epochs != 0 || !FrozenPlan.Retrains.empty())
    fail("frozen-differential", "frozen model retrained anyway");

  // (c) Byte accounting: each routing partitions every allocated byte
  // between arena and general heap — nothing dropped, nothing doubled.
  uint64_t OnlineArena = 0, OnlineGeneral = 0;
  uint64_t StaticArena = 0, StaticGeneral = 0;
  const std::vector<AllocRecord> &Records = Trace.records();
  for (size_t Id = 0; Id < Records.size(); ++Id) {
    uint64_t Size = Records[Id].Size;
    (CompiledPlan.testShort(Id) ? OnlineArena : OnlineGeneral) += Size;
    (StaticBits.test(Id) ? StaticArena : StaticGeneral) += Size;
  }
  uint64_t Total = Trace.totalBytes();
  if (OnlineArena + OnlineGeneral != Total)
    fail("byte-accounting",
         "online arena " + std::to_string(OnlineArena) + " + general " +
             std::to_string(OnlineGeneral) + " != total " +
             std::to_string(Total));
  if (StaticArena + StaticGeneral != Total)
    fail("byte-accounting",
         "static arena " + std::to_string(StaticArena) + " + general " +
             std::to_string(StaticGeneral) + " != total " +
             std::to_string(Total));
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  uint64_t Seed = static_cast<uint64_t>(Cl.getInt("seed", 1));
  size_t Runs = static_cast<size_t>(Cl.getInt("runs", 50));
  size_t Objects = static_cast<size_t>(Cl.getInt("objects", 4000));
  size_t BinaryCases = static_cast<size_t>(Cl.getInt("binary-cases", 8));
  bool Minimize = !Cl.has("no-minimize");
  std::string CorpusOut = Cl.getString("corpus-out", "fuzz-repros");
  std::string ProfileArg = Cl.getString("profile", "all");
  std::string Mode = Cl.getString("mode", "shadow");
  if (Mode != "shadow" && Mode != "onlinepred") {
    std::printf("unknown mode '%s' (expected shadow or onlinepred)\n",
                Mode.c_str());
    return 2;
  }

  if (Cl.has("replay"))
    return replayFile(Cl.getString("replay", ""));
  if (Cl.has("emit-corpus"))
    return emitCorpus(Cl.getString("emit-corpus", "tests/corpus"), Seed,
                      static_cast<size_t>(Cl.getInt("objects", 256)));

  std::vector<FuzzProfile> Profiles;
  if (ProfileArg == "all") {
    Profiles = allProfiles();
  } else if (std::optional<FuzzProfile> P = profileByName(ProfileArg)) {
    Profiles.push_back(*P);
  } else {
    std::printf("unknown profile '%s'; known:", ProfileArg.c_str());
    for (FuzzProfile Profile : allProfiles())
      std::printf(" %s", profileName(Profile));
    std::printf("\n");
    return 2;
  }

  std::printf("lifepred_fuzz: %s mode, %zu runs x %zu objects, seed %llu, "
              "%zu profile(s)\n",
              Mode.c_str(), Runs, Objects,
              static_cast<unsigned long long>(Seed), Profiles.size());

  double Start = wallTimeSeconds();
  uint64_t TotalEvents = 0;
  uint64_t TotalViolations = 0;
  std::map<std::string, uint64_t> EventsByProfile;

  for (size_t Run = 0; Run < Runs; ++Run) {
    FuzzProfile Profile = Profiles[Run % Profiles.size()];
    uint64_t CaseSeed = Seed + Run;
    if (Mode == "onlinepred") {
      OnlineFuzzResult Online = runOnlineFuzzCase(Profile, CaseSeed, Objects);
      TotalEvents += Online.Events;
      EventsByProfile[profileName(Profile)] += Online.Events;
      TotalViolations += Online.Failures;
      continue;
    }
    ShadowReport Report = runFuzzCase(Profile, CaseSeed, Objects);
    TotalEvents += Report.Events;
    EventsByProfile[profileName(Profile)] += Report.Events;
    if (!Report.clean()) {
      TotalViolations += Report.ViolationCount;
      std::printf("VIOLATION run %zu profile %s seed %llu: %s\n", Run,
                  profileName(Profile),
                  static_cast<unsigned long long>(CaseSeed),
                  Report.summary().c_str());
      for (const Violation &V : Report.Violations)
        std::printf("  op %llu  %s: %s\n",
                    static_cast<unsigned long long>(V.Op),
                    V.Invariant.c_str(), V.Detail.c_str());
      if (Minimize)
        minimizeAndSave(generateFuzzTrace(Profile, CaseSeed, Objects),
                        CorpusOut,
                        std::string(profileName(Profile)) + "_seed" +
                            std::to_string(CaseSeed));
    }
  }

  // Binary reader robustness batch rides along with every fuzz run.
  BinaryFuzzStats BinStats;
  std::string BinError;
  bool BinOk = BinaryCases == 0 ||
               fuzzBinaryRoundTrip(Seed, BinaryCases, BinError, &BinStats);
  if (!BinOk) {
    ++TotalViolations;
    std::printf("VIOLATION binary round-trip: %s\n", BinError.c_str());
  }

  double Wall = wallTimeSeconds() - Start;
  std::printf("fuzz: %llu events across %zu runs, %llu violations, "
              "binary mutants %llu (%llu accepted)\n",
              static_cast<unsigned long long>(TotalEvents), Runs,
              static_cast<unsigned long long>(TotalViolations),
              static_cast<unsigned long long>(BinStats.Cases),
              static_cast<unsigned long long>(BinStats.Accepted));

  JsonReport Report("fuzz_smoke", Options);
  Report.add("fuzz.runs", static_cast<double>(Runs));
  Report.add("fuzz.objects", static_cast<double>(Objects));
  Report.add("fuzz.violations", static_cast<double>(TotalViolations));
  Report.add("fuzz.binary_cases", static_cast<double>(BinStats.Cases));
  Report.add("fuzz.binary_accepted", static_cast<double>(BinStats.Accepted));
  for (const auto &[Name, Events] : EventsByProfile)
    Report.add("fuzz." + Name + ".events", static_cast<double>(Events));
  Report.setThroughput(TotalEvents, Wall);
  Report.write();

  return TotalViolations == 0 ? 0 : 1;
}
