//===- bench/lifepred_fuzz.cpp - Shadow-heap fuzz harness ------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLI driver for the verify layer: generates adversarial traces from the
/// fuzz profiles, replays each through every allocator family and both
/// replay paths under the shadow-heap oracle, and minimizes any violating
/// trace into a corpus file that replays forever as a ctest case.
///
///   lifepred_fuzz --runs=200 --objects=4000 --seed=1
///   lifepred_fuzz --profile=fragmentation --runs=20
///   lifepred_fuzz --replay=tests/corpus/foo.lptrace
///   lifepred_fuzz --emit-corpus=tests/corpus --objects=256
///   lifepred_fuzz --runs=24 --json=FUZZ_smoke.json   # CI smoke + gate
///
/// Exit status: 0 = no violations, 1 = violations found, 2 = usage error.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "trace/TraceBinaryIO.h"
#include "verify/Shrinker.h"
#include "verify/TraceFuzzer.h"

#include <cstdio>
#include <fstream>
#include <map>

using namespace lifepred;

namespace {

/// Minimizes \p Trace under shadowCheckAll and writes it to \p Dir.
void minimizeAndSave(const AllocationTrace &Trace, const std::string &Dir,
                     const std::string &Stem) {
  auto StillFails = [](const AllocationTrace &T) {
    return !shadowCheckAll(T).clean();
  };
  ShrinkStats Stats;
  AllocationTrace Minimal = shrinkTrace(Trace, StillFails, 2000, &Stats);
  std::string Path;
  if (writeCorpusTrace(Minimal, Dir, Stem, Path))
    std::printf("  minimized %zu -> %zu records (%llu probes): %s\n",
                Trace.size(), Minimal.size(),
                static_cast<unsigned long long>(Stats.Probes), Path.c_str());
  else
    std::printf("  FAILED to write minimized repro to %s\n", Dir.c_str());
}

int replayFile(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    std::printf("cannot open %s\n", Path.c_str());
    return 2;
  }
  std::optional<AllocationTrace> Trace = readTraceBinary(IS);
  if (!Trace) {
    std::printf("%s: not a valid binary trace\n", Path.c_str());
    return 2;
  }
  ShadowReport Report = shadowCheckAll(*Trace);
  std::printf("%s: %zu records, %s\n", Path.c_str(), Trace->size(),
              Report.summary().c_str());
  for (const Violation &V : Report.Violations)
    std::printf("  op %llu  %s: %s\n",
                static_cast<unsigned long long>(V.Op), V.Invariant.c_str(),
                V.Detail.c_str());
  return Report.clean() ? 0 : 1;
}

int emitCorpus(const std::string &Dir, uint64_t Seed, size_t Objects) {
  for (FuzzProfile Profile : allProfiles()) {
    AllocationTrace Trace = generateFuzzTrace(Profile, Seed, Objects);
    std::string Stem =
        std::string(profileName(Profile)) + "_seed" + std::to_string(Seed);
    std::string Path;
    if (!writeCorpusTrace(Trace, Dir, Stem, Path)) {
      std::printf("FAILED to write %s\n", Stem.c_str());
      return 2;
    }
    std::printf("wrote %s (%zu records)\n", Path.c_str(), Trace.size());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  uint64_t Seed = static_cast<uint64_t>(Cl.getInt("seed", 1));
  size_t Runs = static_cast<size_t>(Cl.getInt("runs", 50));
  size_t Objects = static_cast<size_t>(Cl.getInt("objects", 4000));
  size_t BinaryCases = static_cast<size_t>(Cl.getInt("binary-cases", 8));
  bool Minimize = !Cl.has("no-minimize");
  std::string CorpusOut = Cl.getString("corpus-out", "fuzz-repros");
  std::string ProfileArg = Cl.getString("profile", "all");

  if (Cl.has("replay"))
    return replayFile(Cl.getString("replay", ""));
  if (Cl.has("emit-corpus"))
    return emitCorpus(Cl.getString("emit-corpus", "tests/corpus"), Seed,
                      static_cast<size_t>(Cl.getInt("objects", 256)));

  std::vector<FuzzProfile> Profiles;
  if (ProfileArg == "all") {
    Profiles = allProfiles();
  } else if (std::optional<FuzzProfile> P = profileByName(ProfileArg)) {
    Profiles.push_back(*P);
  } else {
    std::printf("unknown profile '%s'; known:", ProfileArg.c_str());
    for (FuzzProfile Profile : allProfiles())
      std::printf(" %s", profileName(Profile));
    std::printf("\n");
    return 2;
  }

  std::printf("lifepred_fuzz: %zu runs x %zu objects, seed %llu, "
              "%zu profile(s)\n",
              Runs, Objects, static_cast<unsigned long long>(Seed),
              Profiles.size());

  double Start = wallTimeSeconds();
  uint64_t TotalEvents = 0;
  uint64_t TotalViolations = 0;
  std::map<std::string, uint64_t> EventsByProfile;

  for (size_t Run = 0; Run < Runs; ++Run) {
    FuzzProfile Profile = Profiles[Run % Profiles.size()];
    uint64_t CaseSeed = Seed + Run;
    ShadowReport Report = runFuzzCase(Profile, CaseSeed, Objects);
    TotalEvents += Report.Events;
    EventsByProfile[profileName(Profile)] += Report.Events;
    if (!Report.clean()) {
      TotalViolations += Report.ViolationCount;
      std::printf("VIOLATION run %zu profile %s seed %llu: %s\n", Run,
                  profileName(Profile),
                  static_cast<unsigned long long>(CaseSeed),
                  Report.summary().c_str());
      for (const Violation &V : Report.Violations)
        std::printf("  op %llu  %s: %s\n",
                    static_cast<unsigned long long>(V.Op),
                    V.Invariant.c_str(), V.Detail.c_str());
      if (Minimize)
        minimizeAndSave(generateFuzzTrace(Profile, CaseSeed, Objects),
                        CorpusOut,
                        std::string(profileName(Profile)) + "_seed" +
                            std::to_string(CaseSeed));
    }
  }

  // Binary reader robustness batch rides along with every fuzz run.
  BinaryFuzzStats BinStats;
  std::string BinError;
  bool BinOk = BinaryCases == 0 ||
               fuzzBinaryRoundTrip(Seed, BinaryCases, BinError, &BinStats);
  if (!BinOk) {
    ++TotalViolations;
    std::printf("VIOLATION binary round-trip: %s\n", BinError.c_str());
  }

  double Wall = wallTimeSeconds() - Start;
  std::printf("fuzz: %llu events across %zu runs, %llu violations, "
              "binary mutants %llu (%llu accepted)\n",
              static_cast<unsigned long long>(TotalEvents), Runs,
              static_cast<unsigned long long>(TotalViolations),
              static_cast<unsigned long long>(BinStats.Cases),
              static_cast<unsigned long long>(BinStats.Accepted));

  JsonReport Report("fuzz_smoke", Options);
  Report.add("fuzz.runs", static_cast<double>(Runs));
  Report.add("fuzz.objects", static_cast<double>(Objects));
  Report.add("fuzz.violations", static_cast<double>(TotalViolations));
  Report.add("fuzz.binary_cases", static_cast<double>(BinStats.Cases));
  Report.add("fuzz.binary_accepted", static_cast<double>(BinStats.Accepted));
  for (const auto &[Name, Events] : EventsByProfile)
    Report.add("fuzz." + Name + ".events", static_cast<double>(Events));
  Report.setThroughput(TotalEvents, Wall);
  Report.write();

  return TotalViolations == 0 ? 0 : 1;
}
