//===- bench/bench_compare.cpp - Bench report regression diff --------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diffs two BENCH_*.json reports written by the --json flag of any bench:
/// value metrics (simulation results, telemetry counters) against one
/// tolerance, timing metrics (wall_seconds, events_per_sec) against
/// another, with a non-zero exit on regression.  Also reachable as
/// `trace_tool report`; all logic lives in telemetry/ReportDiff.
///
//===----------------------------------------------------------------------===//

#include "telemetry/ReportDiff.h"

#include <string>
#include <vector>

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  return lifepred::runBenchCompare(Args);
}
