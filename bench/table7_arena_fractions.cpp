//===- bench/table7_arena_fractions.cpp - Reproduce Table 7 ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Reproduces Table 7: the fraction of objects and bytes the lifetime-
// predicting arena allocator places in the 64 KB arena area under true
// prediction.  Expected shapes: GHOST arenas most *objects* but few *bytes*
// (its 6 KB short-lived objects do not fit a 4 KB arena); CFRAC collapses
// because mispredicted very-long-lived objects pollute the arenas.
//
// --audit-out=<file> attaches a flight recorder to every program's replay
// and writes the lifetime audit report: which sites mispredicted, and
// which surviving objects pinned which arenas (the causal record behind
// CFRAC's collapse).  --drift-out=<file> attaches the prediction drift
// observatory instead-or-additionally and writes the windowed drift
// reports (confusion timelines, CUSUM change points, per-site quantile
// divergence) as ordered JSON — the same collapse, localized in byte-clock
// time; --drift-window=B overrides the auto window width.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "ObservatoryBench.h"

#include "core/Pipeline.h"
#include "sim/SimTelemetry.h"
#include "sim/TraceSimulator.h"
#include "support/TableFormatter.h"
#include "telemetry/DriftObservatory.h"
#include "telemetry/FlightRecorder.h"

#include <cstdio>
#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  printBanner("Table 7",
              "objects and bytes allocated in arenas (true prediction)",
              Options);

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();

  std::FILE *AuditFile = nullptr;
  if (!Options.AuditOutPath.empty()) {
    AuditFile = std::fopen(Options.AuditOutPath.c_str(), "w");
    if (!AuditFile)
      std::fprintf(stderr, "warning: cannot write --audit-out=%s\n",
                   Options.AuditOutPath.c_str());
  }

  TableFormatter Table({"Program", "Allocs(1000s)", "paperTotal",
                        "Arena%", "paper", "NonArena%", "Bytes(K)",
                        "ArenaBytes%", "paper", "NonArenaBytes%"});

  bool WantDrift = !Options.DriftOutPath.empty();
  std::string DriftJson = "{\n  \"schema_version\": 1,\n  \"reports\": [\n";

  std::vector<ProgramTraces> All = makeAllTraces(Options);
  for (size_t Index = 0; Index < All.size(); ++Index) {
    const ProgramTraces &Traces = All[Index];
    const PaperProgramData *Paper = paperData(Traces.Model.Name);

    Profile TrainProfile = profileTrace(Traces.Train, Policy);
    SiteDatabase DB = trainDatabase(TrainProfile, Policy);
    CompiledTrace Test(Traces.Test, Policy);
    FlightRecorder::Config RecorderConfig;
    RecorderConfig.Seed = Options.Seed;
    FlightRecorder Recorder(RecorderConfig);
    std::unique_ptr<DriftObservatory> DriftObs;
    if (WantDrift) {
      DriftConfig Config;
      Config.EndClock = Test.schedule().endClock();
      Config.WindowBytes = Options.DriftWindowBytes;
      Config.Threshold = DB.threshold();
      DriftObs = std::make_unique<DriftObservatory>(Config);
    }
    SimTelemetry Telemetry;
    Telemetry.Recorder = AuditFile ? &Recorder : nullptr;
    Telemetry.Drift = DriftObs.get();
    bool Instrument = AuditFile || WantDrift;
    ArenaSimResult Sim =
        simulateArena(Test, DB, Traces.Model.CallsPerAlloc,
                      CostModel(), ArenaAllocator::Config(),
                      Instrument ? &Telemetry : nullptr);
    if (Instrument) {
      TrainedQuantileMap Trained =
          buildTrainedQuantiles(Traces.Test, TrainProfile, Policy);
      if (AuditFile) {
        AuditReport Audit = buildAuditReport(
            Recorder, &Trained, std::string(Traces.Model.Name) + ".arena");
        printAuditReport(Audit, AuditFile);
      }
      if (WantDrift) {
        DriftReport Drift = buildDriftReport(
            *DriftObs, &Trained, std::string(Traces.Model.Name) + ".arena");
        writeDriftJson(Drift, DriftJson, "    ");
        DriftJson += Index + 1 != All.size() ? ",\n" : "\n";
      }
    }

    uint64_t TotalAllocs = Sim.Arena.ArenaAllocs + Sim.Arena.GeneralAllocs;
    uint64_t TotalBytes = Sim.Arena.ArenaBytes + Sim.Arena.GeneralBytes;
    Table.beginRow();
    Table.addCell(Traces.Model.Name);
    Table.addReal(static_cast<double>(TotalAllocs) / 1000.0, 1);
    Table.addReal(Paper->TotalObjectsM * 1000.0, 1);
    Table.addPercent(Sim.arenaAllocPercent());
    Table.addReal(Paper->ArenaAllocPercent, 1);
    Table.addPercent(100.0 - Sim.arenaAllocPercent());
    Table.addInt(static_cast<int64_t>(TotalBytes / 1024));
    Table.addPercent(Sim.arenaBytesPercent());
    Table.addReal(Paper->ArenaBytesPercent, 1);
    Table.addPercent(100.0 - Sim.arenaBytesPercent());
  }

  Table.print(std::cout);
  if (AuditFile)
    std::fclose(AuditFile);
  if (WantDrift) {
    DriftJson += "  ]\n}\n";
    std::FILE *DriftFile = std::fopen(Options.DriftOutPath.c_str(), "w");
    if (!DriftFile) {
      std::fprintf(stderr, "warning: cannot write --drift-out=%s\n",
                   Options.DriftOutPath.c_str());
    } else {
      std::fwrite(DriftJson.data(), 1, DriftJson.size(), DriftFile);
      std::fclose(DriftFile);
      std::printf("drift JSON written to %s\n",
                  Options.DriftOutPath.c_str());
    }
  }
  if (Options.Observe) {
    ThreadPool Pool(Options.Jobs);
    StatsRegistry ObservatoryRegistry;
    runObservatoryPass(Options, All, Pool, ObservatoryRegistry);
    JsonReport Report("table7_arena_fractions", Options);
    Report.attachTelemetry(&ObservatoryRegistry);
    Report.write();
  }
  return 0;
}
