//===- bench/table7_arena_fractions.cpp - Reproduce Table 7 ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Reproduces Table 7: the fraction of objects and bytes the lifetime-
// predicting arena allocator places in the 64 KB arena area under true
// prediction.  Expected shapes: GHOST arenas most *objects* but few *bytes*
// (its 6 KB short-lived objects do not fit a 4 KB arena); CFRAC collapses
// because mispredicted very-long-lived objects pollute the arenas.
//
// --audit-out=<file> attaches a flight recorder to every program's replay
// and writes the lifetime audit report: which sites mispredicted, and
// which surviving objects pinned which arenas (the causal record behind
// CFRAC's collapse).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "ObservatoryBench.h"

#include "core/Pipeline.h"
#include "sim/SimTelemetry.h"
#include "sim/TraceSimulator.h"
#include "support/TableFormatter.h"
#include "telemetry/FlightRecorder.h"

#include <cstdio>
#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  printBanner("Table 7",
              "objects and bytes allocated in arenas (true prediction)",
              Options);

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();

  std::FILE *AuditFile = nullptr;
  if (!Options.AuditOutPath.empty()) {
    AuditFile = std::fopen(Options.AuditOutPath.c_str(), "w");
    if (!AuditFile)
      std::fprintf(stderr, "warning: cannot write --audit-out=%s\n",
                   Options.AuditOutPath.c_str());
  }

  TableFormatter Table({"Program", "Allocs(1000s)", "paperTotal",
                        "Arena%", "paper", "NonArena%", "Bytes(K)",
                        "ArenaBytes%", "paper", "NonArenaBytes%"});

  std::vector<ProgramTraces> All = makeAllTraces(Options);
  for (const ProgramTraces &Traces : All) {
    const PaperProgramData *Paper = paperData(Traces.Model.Name);

    Profile TrainProfile = profileTrace(Traces.Train, Policy);
    SiteDatabase DB = trainDatabase(TrainProfile, Policy);
    CompiledTrace Test(Traces.Test, Policy);
    FlightRecorder::Config RecorderConfig;
    RecorderConfig.Seed = Options.Seed;
    FlightRecorder Recorder(RecorderConfig);
    SimTelemetry Telemetry;
    Telemetry.Recorder = AuditFile ? &Recorder : nullptr;
    ArenaSimResult Sim =
        simulateArena(Test, DB, Traces.Model.CallsPerAlloc,
                      CostModel(), ArenaAllocator::Config(),
                      AuditFile ? &Telemetry : nullptr);
    if (AuditFile) {
      TrainedQuantileMap Trained =
          buildTrainedQuantiles(Traces.Test, TrainProfile, Policy);
      AuditReport Audit = buildAuditReport(
          Recorder, &Trained, std::string(Traces.Model.Name) + ".arena");
      printAuditReport(Audit, AuditFile);
    }

    uint64_t TotalAllocs = Sim.Arena.ArenaAllocs + Sim.Arena.GeneralAllocs;
    uint64_t TotalBytes = Sim.Arena.ArenaBytes + Sim.Arena.GeneralBytes;
    Table.beginRow();
    Table.addCell(Traces.Model.Name);
    Table.addReal(static_cast<double>(TotalAllocs) / 1000.0, 1);
    Table.addReal(Paper->TotalObjectsM * 1000.0, 1);
    Table.addPercent(Sim.arenaAllocPercent());
    Table.addReal(Paper->ArenaAllocPercent, 1);
    Table.addPercent(100.0 - Sim.arenaAllocPercent());
    Table.addInt(static_cast<int64_t>(TotalBytes / 1024));
    Table.addPercent(Sim.arenaBytesPercent());
    Table.addReal(Paper->ArenaBytesPercent, 1);
    Table.addPercent(100.0 - Sim.arenaBytesPercent());
  }

  Table.print(std::cout);
  if (AuditFile)
    std::fclose(AuditFile);
  if (Options.Observe) {
    ThreadPool Pool(Options.Jobs);
    StatsRegistry ObservatoryRegistry;
    runObservatoryPass(Options, All, Pool, ObservatoryRegistry);
    JsonReport Report("table7_arena_fractions", Options);
    Report.attachTelemetry(&ObservatoryRegistry);
    Report.write();
  }
  return 0;
}
