//===- bench/ablation_type_prediction.cpp - Type-based prediction ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Implements the paper's stated future work: "Extensions of lifetime
// prediction algorithms that use type information, which is available in
// languages such as C++, Modula-2, and Modula-3, are the subject of future
// research."  Compares self prediction keyed on the object's type alone,
// type + size, size alone (Table 5), the short length-1 chain, and the
// complete chain.  Types are modeled per site group; interpreter-style
// programs funnel many behaviours through one struct (gawk's NODE, perl's
// SV, GhostScript's ref), which bounds what type can resolve.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Pipeline.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  if (!Cl.has("scale"))
    Options.Scale = 0.25;
  printBanner("Ablation G",
              "type-based lifetime prediction (the paper's future work)",
              Options);

  struct PolicyCase {
    const char *Name;
    SiteKeyPolicy Policy;
  };
  const PolicyCase Policies[] = {
      {"size only", SiteKeyPolicy::sizeOnly()},
      {"type only", SiteKeyPolicy::typeOnly()},
      {"type + size", SiteKeyPolicy::typeAndSize()},
      {"chain length 1", SiteKeyPolicy::lastN(1)},
      {"complete chain", SiteKeyPolicy::completeChain()},
  };

  TableFormatter Table({"Program", "Predictor", "Pred%", "SitesUsed"});
  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    bool First = true;
    for (const PolicyCase &Case : Policies) {
      PipelineResult R =
          trainAndEvaluate(Traces.Train, Traces.Train, Case.Policy);
      Table.beginRow();
      Table.addCell(First ? Traces.Model.Name : "");
      Table.addCell(Case.Name);
      Table.addPercent(R.Report.predictedShortPercent());
      Table.addInt(static_cast<int64_t>(R.Report.SitesUsed));
      First = false;
    }
  }
  Table.print(std::cout);
  std::printf("\nReading: type sits between size and the call-chain as a "
              "predictor.  It beats size (types separate same-sized "
              "structs) but a shared workhorse struct — gawk's NODE, "
              "perl's SV — carries both short- and long-lived objects, so "
              "only the allocation context can split those.\n");
  return 0;
}
