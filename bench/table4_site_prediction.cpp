//===- bench/table4_site_prediction.cpp - Reproduce Table 4 ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Reproduces Table 4: the fraction of bytes predicted short-lived from the
// allocation site (complete pruned call-chain + size rounded to 4), under
// self prediction (train == test input) and true prediction (different
// inputs), with the paper's 32 KB threshold.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Pipeline.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  printBanner("Table 4",
              "bytes predicted short-lived from allocation site and size",
              Options);

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  TrainingOptions Train;
  Train.Threshold = static_cast<uint64_t>(
      Cl.getInt("threshold", DefaultShortLivedThreshold));

  TableFormatter Table({"Program", "Sites", "paper", "Actual%", "paper",
                        "SelfSites", "paper", "SelfPred%", "paper",
                        "SelfErr%", "paper", "TrueSites", "paper",
                        "TruePred%", "paper", "TrueErr%", "paper"});

  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    const PaperProgramData *Paper = paperData(Traces.Model.Name);

    PipelineResult Self =
        trainAndEvaluate(Traces.Train, Traces.Train, Policy, Train);
    PredictionReport True = evaluatePrediction(Traces.Test, Self.Database);

    Table.beginRow();
    Table.addCell(Traces.Model.Name);
    Table.addInt(static_cast<int64_t>(Self.TrainingProfile.Sites.size()));
    Table.addInt(Paper->TotalSites);
    Table.addPercent(Self.Report.actualShortPercent(), 0);
    Table.addInt(Paper->ActualShortPercent);
    Table.addInt(static_cast<int64_t>(Self.Report.SitesUsed));
    Table.addInt(Paper->SelfSitesUsed);
    Table.addPercent(Self.Report.predictedShortPercent());
    Table.addReal(Paper->SelfPredictedPercent, 1);
    Table.addPercent(Self.Report.errorPercent(), 2);
    Table.addReal(Paper->SelfErrorPercent, 2);
    Table.addInt(static_cast<int64_t>(True.SitesUsed));
    Table.addInt(Paper->TrueSitesUsed);
    Table.addPercent(True.predictedShortPercent());
    Table.addReal(Paper->TruePredictedPercent, 1);
    Table.addPercent(True.errorPercent(), 2);
    Table.addReal(Paper->TrueErrorPercent, 2);
  }

  Table.print(std::cout);
  return 0;
}
