//===- bench/ObservatoryBench.cpp - Heap observatory bench hooks -----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ObservatoryBench.h"

#include "core/Pipeline.h"
#include "sim/MultiArenaSimulator.h"
#include "sim/SimTelemetry.h"
#include "sim/TraceSimulator.h"
#include "support/TableFormatter.h"

#include <cstdio>
#include <iostream>

using namespace lifepred;

namespace {

const char *const FamilyNames[BenchObservatory::FamilyCount] = {
    "firstfit", "bsd", "arena", "multiarena"};

} // namespace

BenchObservatory::BenchObservatory(const BenchOptions &Options,
                                   size_t ProgramCount) {
  if (!Options.Observe || ProgramCount == 0)
    return;
  Stride = Options.ObserveStride;
  const size_t Sinks = ProgramCount * FamilyCount;
  Probes.reserve(Sinks);
  Latencies.reserve(Sinks);
  for (size_t I = 0; I < Sinks; ++I) {
    Probes.emplace_back(Stride);
    Latencies.emplace_back();
  }
  HeapHeatmap::Config MapConfig;
  MapConfig.ClockStride = Stride;
  Map = std::make_unique<HeapHeatmap>(MapConfig);
}

void BenchObservatory::attach(SimTelemetry &Telemetry, size_t Program,
                              Family F) {
  if (!enabled())
    return;
  Telemetry.Fragmentation = &Probes[Program * FamilyCount + F];
  Telemetry.Latency = &Latencies[Program * FamilyCount + F];
  if (Program == 0 && F == FirstFit)
    Telemetry.Heatmap = Map.get();
}

void BenchObservatory::finish(const BenchOptions &Options,
                              const std::vector<ProgramTraces> &All) {
  if (!enabled())
    return;
  std::printf("\n-- observatory (byte-clock stride %llu) --\n",
              static_cast<unsigned long long>(Stride));
  TableFormatter Table({"Program", "Family", "Samples", "FragIdx(ppm)",
                        "MaxFrag(ppm)", "LargestFree", "AllocP99(ns)"});
  for (size_t I = 0; I < All.size(); ++I) {
    bool First = true;
    for (unsigned F = 0; F < FamilyCount; ++F) {
      const FragmentationProbe &Probe = Probes[I * FamilyCount + F];
      if (Probe.sampleCount() == 0)
        continue; // Family not replayed under this bench mode.
      Table.beginRow();
      Table.addCell(First ? All[I].Model.Name : "");
      First = false;
      Table.addCell(FamilyNames[F]);
      Table.addInt(static_cast<int64_t>(Probe.sampleCount()));
      Table.addInt(static_cast<int64_t>(Probe.lastFragIndexPpm()));
      Table.addInt(static_cast<int64_t>(Probe.maxFragIndexPpm()));
      Table.addInt(static_cast<int64_t>(Probe.largestFreeBlock()));
      Table.addInt(static_cast<int64_t>(Latencies[I * FamilyCount + F]
                                            .quantileNanos(
                                                LatencyRecorder::OpAlloc,
                                                0.99)));
    }
  }
  Table.print(std::cout);
  if (Map) {
    std::printf("heatmap: %llu rows x %llu columns, %llu occupied cells, "
                "%llu clipped bytes\n",
                static_cast<unsigned long long>(Map->rowCount()),
                static_cast<unsigned long long>(Map->columnCount()),
                static_cast<unsigned long long>(Map->occupiedCells()),
                static_cast<unsigned long long>(Map->clippedBytes()));
    if (!Options.HeatmapOutPath.empty()) {
      std::string Out;
      Map->writeJson(Out, "");
      Out += "\n";
      std::FILE *File = std::fopen(Options.HeatmapOutPath.c_str(), "w");
      if (!File) {
        std::fprintf(stderr, "warning: cannot write --heatmap-out=%s\n",
                     Options.HeatmapOutPath.c_str());
      } else {
        std::fwrite(Out.data(), 1, Out.size(), File);
        std::fclose(File);
        std::printf("heatmap JSON written to %s\n",
                    Options.HeatmapOutPath.c_str());
      }
    }
  }
}

bool lifepred::runObservatoryPass(const BenchOptions &Options,
                                  const std::vector<ProgramTraces> &All,
                                  ThreadPool &Pool, StatsRegistry &Registry) {
  if (!Options.Observe || All.empty())
    return false;
  BenchObservatory Observatory(Options, All.size());
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  // The multi-arena band geometry of ablation_multi_arena's "2 bands"
  // case, matching bench_sim_throughput's observatory configuration.
  const std::vector<uint64_t> BandThresholds = {16 * 1024, 32 * 1024};
  MultiArenaAllocator::Config MultiConfig;
  MultiConfig.Bands = {{32 * 1024, 8}, {32 * 1024, 8}};

  std::vector<StatsRegistry> PerProgram(All.size());
  parallelForIndex(Pool, All.size(), [&](size_t Index) {
    const ProgramTraces &Traces = All[Index];
    CompiledTrace Test(Traces.Test, Policy);
    Profile TrainProfile = profileTrace(Traces.Train, Policy);
    SiteDatabase TrueDB = trainDatabase(TrainProfile, Policy);
    ClassDatabase ClassDB =
        trainClassDatabase(TrainProfile, Policy, BandThresholds);

    SimTelemetry FF;
    FF.Registry = &PerProgram[Index];
    Observatory.attach(FF, Index, BenchObservatory::FirstFit);
    simulateFirstFit(Test, CostModel(), FirstFitAllocator::Config(), &FF);

    SimTelemetry Bsd;
    Bsd.Registry = &PerProgram[Index];
    Observatory.attach(Bsd, Index, BenchObservatory::Bsd);
    simulateBsd(Test, CostModel(), BsdAllocator::Config(), &Bsd);

    SimTelemetry Arena;
    Arena.Registry = &PerProgram[Index];
    Observatory.attach(Arena, Index, BenchObservatory::Arena);
    simulateArena(Test, TrueDB, Traces.Model.CallsPerAlloc, CostModel(),
                  ArenaAllocator::Config(), &Arena);

    SimTelemetry Multi;
    Multi.Registry = &PerProgram[Index];
    Observatory.attach(Multi, Index, BenchObservatory::Multi);
    simulateMultiArena(Test, ClassDB, MultiConfig, &Multi);
  });
  for (StatsRegistry &Program : PerProgram)
    Registry.merge(Program);
  Observatory.finish(Options, All);
  return true;
}
