//===- bench/ablation_locality.cpp - Cache locality comparison -------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Quantifies the paper's locality claim (sections 1 and 6): confining
// short-lived objects — a large fraction of all heap references — to a
// 64 KB arena area improves reference locality.  Replays each program's
// test trace through first fit and the arena allocator, synthesizes the
// heap reference stream, and measures miss rates in the same cache.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Pipeline.h"
#include "locality/LocalityExperiment.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  if (!Cl.has("scale"))
    Options.Scale = 0.3;
  printBanner("Ablation D", "cache miss rate: first fit vs arena",
              Options);

  std::vector<uint64_t> CacheKbs = {8, 16, 64};
  if (Cl.has("cache-kb"))
    CacheKbs = {static_cast<uint64_t>(Cl.getInt("cache-kb", 64))};

  TableFormatter Table({"Program", "Cache(K)", "FirstFitMiss%",
                        "ArenaMiss%", "Improvement%"});
  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
    SiteDatabase DB =
        trainDatabase(profileTrace(Traces.Train, Policy), Policy);
    bool First = true;
    for (uint64_t CacheKb : CacheKbs) {
      LocalityOptions Locality;
      Locality.Cache.CacheBytes = CacheKb * 1024;
      LocalityResult R = compareLocality(Traces.Test, DB, Locality);
      Table.beginRow();
      Table.addCell(First ? Traces.Model.Name : "");
      Table.addInt(static_cast<int64_t>(CacheKb));
      Table.addPercent(R.FirstFitMissPercent, 2);
      Table.addPercent(R.ArenaMissPercent, 2);
      if (R.FirstFitMissPercent < 0.05)
        Table.addCell("-"); // Both rates negligible: ratio meaningless.
      else
        Table.addPercent(100.0 *
                             (R.FirstFitMissPercent - R.ArenaMissPercent) /
                             R.FirstFitMissPercent,
                         1);
      First = false;
    }
  }
  Table.print(std::cout);

  // Page-fault view of the same claim: a small LRU resident set.
  TableFormatter Pages({"Program", "Resident(K)", "FirstFitFault%",
                        "ArenaFault%", "Improvement%"});
  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
    SiteDatabase DB =
        trainDatabase(profileTrace(Traces.Train, Policy), Policy);
    PagingOptions Paging;
    Paging.Memory.MemoryPages =
        static_cast<unsigned>(Cl.getInt("resident-pages", 16));
    PagingResult R = comparePaging(Traces.Test, DB, Paging);
    Pages.beginRow();
    Pages.addCell(Traces.Model.Name);
    Pages.addInt(static_cast<int64_t>(Paging.Memory.MemoryPages *
                                      Paging.Memory.PageBytes / 1024));
    Pages.addPercent(R.FirstFitFaultPercent, 2);
    Pages.addPercent(R.ArenaFaultPercent, 2);
    if (R.FirstFitFaultPercent < 0.05)
      Pages.addCell("-"); // Both rates negligible: ratio meaningless.
    else
      Pages.addPercent(100.0 *
                           (R.FirstFitFaultPercent - R.ArenaFaultPercent) /
                           R.FirstFitFaultPercent,
                       1);
  }
  std::printf("\n");
  Pages.print(std::cout);

  std::printf("\nReading: segregation pays once live data exceeds the "
              "cache — GHOST at every size, the small-heap programs once "
              "the cache is smaller than their heaps.  When the whole heap "
              "fits in cache, first fit's address reuse is already "
              "cache-friendly and the arena area only adds footprint.\n");
  return 0;
}
