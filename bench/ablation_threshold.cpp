//===- bench/ablation_threshold.cpp - Short-lived threshold sweep ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Ablation for section 4.1's design choice: the paper fixes "short-lived"
// at 32 KB, noting the tension — a larger threshold predicts more bytes
// but needs a larger arena area and admits more error.  This sweep
// quantifies that tradeoff per program (true prediction).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Pipeline.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  if (!Cl.has("scale"))
    Options.Scale = 0.25;
  printBanner("Ablation A", "short-lived threshold sweep (true prediction)",
              Options);

  const uint64_t Thresholds[] = {8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024,
                                 128 * 1024};

  TableFormatter Table({"Program", "Threshold(K)", "Actual%", "Pred%",
                        "Error%", "SitesUsed"});
  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    bool First = true;
    for (uint64_t Threshold : Thresholds) {
      TrainingOptions Train;
      Train.Threshold = Threshold;
      PipelineResult Result = trainAndEvaluate(
          Traces.Train, Traces.Test, SiteKeyPolicy::completeChain(), Train);
      Table.beginRow();
      Table.addCell(First ? Traces.Model.Name : "");
      Table.addInt(static_cast<int64_t>(Threshold / 1024));
      Table.addPercent(Result.Report.actualShortPercent());
      Table.addPercent(Result.Report.predictedShortPercent());
      Table.addPercent(Result.Report.errorPercent(), 2);
      Table.addInt(static_cast<int64_t>(Result.Report.SitesUsed));
      First = false;
    }
  }
  Table.print(std::cout);
  return 0;
}
