//===- bench/BenchCommon.cpp - Shared bench harness helpers ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Json.h"
#include "telemetry/HeapTimeline.h"
#include "telemetry/StatsRegistry.h"
#include "telemetry/TraceEventWriter.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

// Build provenance for the run manifest; the bench CMakeLists defines both
// from the configure-time git state.
#ifndef LIFEPRED_GIT_SHA
#define LIFEPRED_GIT_SHA "unknown"
#endif
#ifndef LIFEPRED_BUILD_TYPE
#define LIFEPRED_BUILD_TYPE "unspecified"
#endif

using namespace lifepred;

BenchOptions BenchOptions::fromCommandLine(const CommandLine &Cl) {
  BenchOptions Options;
  Options.Scale = Cl.getDouble("scale", 1.0);
  Options.Seed = static_cast<uint64_t>(Cl.getInt("seed", 0x1993));
  Options.OnlyProgram = Cl.getString("program", "");
  // Default to every core; an explicit --jobs=0 also means "use every
  // core" and --jobs=1 is strictly serial.
  long Jobs = Cl.getInt("jobs", 0);
  if (Jobs <= 0)
    Options.Jobs = ThreadPool::defaultThreadCount();
  else
    Options.Jobs = static_cast<unsigned>(Jobs);
  Options.JsonPath = Cl.getString("json", "");
  Options.TraceOutPath = Cl.getString("trace-out", "");
  Options.AuditOutPath = Cl.getString("audit-out", "");
  long Stride = Cl.getInt("timeline-stride", 0);
  Options.TimelineStride = Stride <= 0 ? 0 : static_cast<uint64_t>(Stride);
  Options.Observe = Cl.has("observe");
  long ObserveStride = Cl.getInt("observe-stride", 64 * 1024);
  if (ObserveStride > 0)
    Options.ObserveStride = static_cast<uint64_t>(ObserveStride);
  Options.HeatmapOutPath = Cl.getString("heatmap-out", "");
  Options.DriftOutPath = Cl.getString("drift-out", "");
  long DriftWindow = Cl.getInt("drift-window", 0);
  if (DriftWindow > 0)
    Options.DriftWindowBytes = static_cast<uint64_t>(DriftWindow);
  return Options;
}

RunManifest RunManifest::current(const BenchOptions &Options) {
  RunManifest Manifest;
  Manifest.GitSha = LIFEPRED_GIT_SHA;
  Manifest.BuildType = LIFEPRED_BUILD_TYPE;
#if defined(__clang__)
  Manifest.Compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
  Manifest.Compiler = "gcc " __VERSION__;
#else
  Manifest.Compiler = "unknown";
#endif
  Manifest.Jobs = Options.Jobs;
  Manifest.Seed = Options.Seed;
  Manifest.Scale = Options.Scale;
  Manifest.Program = Options.OnlyProgram;
  return Manifest;
}

std::unique_ptr<TraceEventWriter>
lifepred::makeTraceWriter(const BenchOptions &Options) {
  if (Options.TraceOutPath.empty())
    return nullptr;
  return std::make_unique<TraceEventWriter>(Options.TraceOutPath);
}

ProgramTraces lifepred::makeTraces(const ProgramModel &Model,
                                   const BenchOptions &Options) {
  ProgramTraces Traces;
  Traces.Model = Model;
  RunOptions Run;
  Run.Scale = Options.Scale;
  Run.Seed = Options.Seed;
  Run.Kind = RunKind::Train;
  Traces.Train = runWorkload(Model, Run, Traces.Registry);
  Run.Kind = RunKind::Test;
  Traces.Test = runWorkload(Model, Run, Traces.Registry);
  return Traces;
}

std::vector<ProgramTraces>
lifepred::makeAllTraces(const BenchOptions &Options, ThreadPool &Pool) {
  std::vector<ProgramModel> Programs = allPrograms();
  std::vector<const ProgramModel *> Selected;
  for (const ProgramModel &Model : Programs) {
    if (!Options.OnlyProgram.empty() && Model.Name != Options.OnlyProgram)
      continue;
    Selected.push_back(&Model);
  }
  // One task per program; each writes only its own slot, so the result
  // order matches allPrograms() regardless of completion order.  Train
  // and test runs share a registry and therefore stay sequential within
  // a program.
  std::vector<ProgramTraces> All(Selected.size());
  parallelForIndex(Pool, Selected.size(), [&](size_t Index) {
    All[Index] = makeTraces(*Selected[Index], Options);
  });
  return All;
}

std::vector<ProgramTraces>
lifepred::makeAllTraces(const BenchOptions &Options) {
  ThreadPool Pool(Options.Jobs);
  return makeAllTraces(Options, Pool);
}

std::vector<CompiledTrace>
lifepred::compileAllTraces(const std::vector<ProgramTraces> &All,
                           ThreadPool &Pool, const SiteKeyPolicy *Policy) {
  std::vector<CompiledTrace> Compiled(All.size());
  parallelForIndex(Pool, All.size(), [&](size_t Index) {
    Compiled[Index] = Policy ? CompiledTrace(All[Index].Test, *Policy)
                             : CompiledTrace(All[Index].Test);
  });
  return Compiled;
}

void lifepred::printBanner(const char *Table, const char *Caption,
                           const BenchOptions &Options) {
  std::printf("== %s: %s ==\n", Table, Caption);
  std::printf("(Barrett & Zorn, PLDI 1993 reproduction; scale=%.2f "
              "seed=0x%llx jobs=%u; 'paper' columns are the published "
              "values)\n\n",
              Options.Scale, static_cast<unsigned long long>(Options.Seed),
              Options.Jobs);
}

double lifepred::wallTimeSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

uint64_t lifepred::peakRssKb() {
#if defined(__linux__)
  // Containers and stripped-down environments can run a Linux kernel
  // without procfs mounted; treat a missing /proc/self/status exactly like
  // a non-Linux platform instead of relying on fopen's failure mode.
  std::error_code Ec;
  if (!std::filesystem::exists("/proc/self/status", Ec))
    return 0;
  std::FILE *Status = std::fopen("/proc/self/status", "r");
  if (!Status)
    return 0;
  unsigned long long Kb = 0;
  char Line[256];
  while (std::fgets(Line, sizeof(Line), Status))
    if (std::sscanf(Line, "VmHWM: %llu", &Kb) == 1)
      break;
  std::fclose(Status);
  return Kb;
#else
  return 0;
#endif
}

bool JsonReport::write() const {
  if (Options.JsonPath.empty())
    return true;

  namespace fs = std::filesystem;
  fs::path Path(Options.JsonPath);
  std::error_code Ec;
  if (fs::is_directory(Path, Ec))
    Path /= "BENCH_" + BenchName + ".json";

  std::string Out;
  char Buf[128];
  Out += "{\n";
  std::snprintf(Buf, sizeof(Buf), "  \"schema_version\": %d,\n",
                SchemaVersion);
  Out += Buf;
  Out += "  \"bench\": \"";
  appendJsonEscaped(Out, BenchName);
  Out += "\",\n";
  Out += "  \"manifest\": {\n    \"git_sha\": \"";
  appendJsonEscaped(Out, Manifest.GitSha);
  Out += "\",\n    \"build_type\": \"";
  appendJsonEscaped(Out, Manifest.BuildType);
  Out += "\",\n    \"compiler\": \"";
  appendJsonEscaped(Out, Manifest.Compiler);
  Out += "\",\n";
  std::snprintf(Buf, sizeof(Buf), "    \"jobs\": %u,\n", Manifest.Jobs);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "    \"seed\": %llu,\n",
                static_cast<unsigned long long>(Manifest.Seed));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "    \"scale\": %.6g,\n", Manifest.Scale);
  Out += Buf;
  Out += "    \"program\": \"";
  appendJsonEscaped(Out, Manifest.Program);
  Out += "\",\n";
  if (Manifest.Threads != 0) {
    // Serving-mode provenance (see RunManifest): scaling-run identity plus
    // contention totals.  Provenance only — contention is interleaving-
    // dependent and must never become a gated value.
    std::snprintf(Buf, sizeof(Buf), "    \"threads\": %u,\n",
                  Manifest.Threads);
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf), "    \"tenants\": %u,\n",
                  Manifest.Tenants);
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf), "    \"contention_cas_retries\": %llu,\n",
                  static_cast<unsigned long long>(
                      Manifest.ContentionCasRetries));
    Out += Buf;
    std::snprintf(
        Buf, sizeof(Buf), "    \"contention_remote_free_pushes\": %llu,\n",
        static_cast<unsigned long long>(Manifest.ContentionRemoteFreePushes));
    Out += Buf;
    std::snprintf(
        Buf, sizeof(Buf), "    \"contention_max_drain_depth\": %llu,\n",
        static_cast<unsigned long long>(Manifest.ContentionMaxDrainDepth));
    Out += Buf;
  }
  // Sampled at write() time, i.e. after the bench's replay work: the
  // streamed-replay residency evidence.  Manifest entries are provenance
  // notes, not gated values, so run-to-run RSS jitter cannot fail a gate.
  std::snprintf(Buf, sizeof(Buf), "    \"peak_rss_kb\": %llu\n  },\n",
                static_cast<unsigned long long>(peakRssKb()));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"events\": %llu,\n",
                static_cast<unsigned long long>(Events));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"wall_seconds\": %.6f,\n", WallSeconds);
  Out += Buf;
  double EventsPerSec =
      WallSeconds > 0.0 ? static_cast<double>(Events) / WallSeconds : 0.0;
  std::snprintf(Buf, sizeof(Buf), "  \"events_per_sec\": %.1f,\n",
                EventsPerSec);
  Out += Buf;
  Out += "  \"values\": {";
  for (size_t I = 0; I < Values.size(); ++I) {
    Out += I == 0 ? "\n" : ",\n";
    Out += "    \"";
    appendJsonEscaped(Out, Values[I].first);
    std::snprintf(Buf, sizeof(Buf), "\": %.6g", Values[I].second);
    Out += Buf;
  }
  Out += Values.empty() ? "}" : "\n  }";
  if (Telemetry) {
    Out += ",\n  \"telemetry\": ";
    Telemetry->writeJson(Out, "  ");
  }
  if (Timeline) {
    Out += ",\n  \"timeline\": ";
    Timeline->writeJson(Out, "  ");
  }
  Out += "\n}\n";

  std::FILE *File = std::fopen(Path.string().c_str(), "w");
  if (!File) {
    std::fprintf(stderr, "warning: cannot write JSON report to %s\n",
                 Path.string().c_str());
    return false;
  }
  std::fwrite(Out.data(), 1, Out.size(), File);
  std::fclose(File);
  std::printf("JSON report written to %s\n", Path.string().c_str());
  return true;
}
