//===- bench/BenchCommon.cpp - Shared bench harness helpers ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace lifepred;

BenchOptions BenchOptions::fromCommandLine(const CommandLine &Cl) {
  BenchOptions Options;
  Options.Scale = Cl.getDouble("scale", 1.0);
  Options.Seed = static_cast<uint64_t>(Cl.getInt("seed", 0x1993));
  Options.OnlyProgram = Cl.getString("program", "");
  return Options;
}

ProgramTraces lifepred::makeTraces(const ProgramModel &Model,
                                   const BenchOptions &Options) {
  ProgramTraces Traces;
  Traces.Model = Model;
  RunOptions Run;
  Run.Scale = Options.Scale;
  Run.Seed = Options.Seed;
  Run.Kind = RunKind::Train;
  Traces.Train = runWorkload(Model, Run, Traces.Registry);
  Run.Kind = RunKind::Test;
  Traces.Test = runWorkload(Model, Run, Traces.Registry);
  return Traces;
}

std::vector<ProgramTraces> lifepred::makeAllTraces(
    const BenchOptions &Options) {
  std::vector<ProgramTraces> All;
  for (const ProgramModel &Model : allPrograms()) {
    if (!Options.OnlyProgram.empty() && Model.Name != Options.OnlyProgram)
      continue;
    All.push_back(makeTraces(Model, Options));
  }
  return All;
}

void lifepred::printBanner(const char *Table, const char *Caption,
                           const BenchOptions &Options) {
  std::printf("== %s: %s ==\n", Table, Caption);
  std::printf("(Barrett & Zorn, PLDI 1993 reproduction; scale=%.2f "
              "seed=0x%llx; 'paper' columns are the published values)\n\n",
              Options.Scale,
              static_cast<unsigned long long>(Options.Seed));
}
