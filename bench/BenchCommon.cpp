//===- bench/BenchCommon.cpp - Shared bench harness helpers ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

using namespace lifepred;

BenchOptions BenchOptions::fromCommandLine(const CommandLine &Cl) {
  BenchOptions Options;
  Options.Scale = Cl.getDouble("scale", 1.0);
  Options.Seed = static_cast<uint64_t>(Cl.getInt("seed", 0x1993));
  Options.OnlyProgram = Cl.getString("program", "");
  long Jobs = Cl.getInt("jobs", 1);
  if (Jobs <= 0) // --jobs=0 means "use every core".
    Options.Jobs = ThreadPool::defaultThreadCount();
  else
    Options.Jobs = static_cast<unsigned>(Jobs);
  Options.JsonPath = Cl.getString("json", "");
  return Options;
}

ProgramTraces lifepred::makeTraces(const ProgramModel &Model,
                                   const BenchOptions &Options) {
  ProgramTraces Traces;
  Traces.Model = Model;
  RunOptions Run;
  Run.Scale = Options.Scale;
  Run.Seed = Options.Seed;
  Run.Kind = RunKind::Train;
  Traces.Train = runWorkload(Model, Run, Traces.Registry);
  Run.Kind = RunKind::Test;
  Traces.Test = runWorkload(Model, Run, Traces.Registry);
  return Traces;
}

std::vector<ProgramTraces>
lifepred::makeAllTraces(const BenchOptions &Options, ThreadPool &Pool) {
  std::vector<ProgramModel> Programs = allPrograms();
  std::vector<const ProgramModel *> Selected;
  for (const ProgramModel &Model : Programs) {
    if (!Options.OnlyProgram.empty() && Model.Name != Options.OnlyProgram)
      continue;
    Selected.push_back(&Model);
  }
  // One task per program; each writes only its own slot, so the result
  // order matches allPrograms() regardless of completion order.  Train
  // and test runs share a registry and therefore stay sequential within
  // a program.
  std::vector<ProgramTraces> All(Selected.size());
  parallelForIndex(Pool, Selected.size(), [&](size_t Index) {
    All[Index] = makeTraces(*Selected[Index], Options);
  });
  return All;
}

std::vector<ProgramTraces>
lifepred::makeAllTraces(const BenchOptions &Options) {
  ThreadPool Pool(Options.Jobs);
  return makeAllTraces(Options, Pool);
}

void lifepred::printBanner(const char *Table, const char *Caption,
                           const BenchOptions &Options) {
  std::printf("== %s: %s ==\n", Table, Caption);
  std::printf("(Barrett & Zorn, PLDI 1993 reproduction; scale=%.2f "
              "seed=0x%llx jobs=%u; 'paper' columns are the published "
              "values)\n\n",
              Options.Scale, static_cast<unsigned long long>(Options.Seed),
              Options.Jobs);
}

double lifepred::wallTimeSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

static void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
}

bool JsonReport::write() const {
  if (Options.JsonPath.empty())
    return true;

  namespace fs = std::filesystem;
  fs::path Path(Options.JsonPath);
  std::error_code Ec;
  if (fs::is_directory(Path, Ec))
    Path /= "BENCH_" + BenchName + ".json";

  std::string Out;
  char Buf[64];
  Out += "{\n";
  Out += "  \"bench\": \"";
  appendJsonEscaped(Out, BenchName);
  Out += "\",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"scale\": %.6g,\n", Options.Scale);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"seed\": %llu,\n",
                static_cast<unsigned long long>(Options.Seed));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"jobs\": %u,\n", Options.Jobs);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"events\": %llu,\n",
                static_cast<unsigned long long>(Events));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"wall_seconds\": %.6f,\n", WallSeconds);
  Out += Buf;
  double EventsPerSec =
      WallSeconds > 0.0 ? static_cast<double>(Events) / WallSeconds : 0.0;
  std::snprintf(Buf, sizeof(Buf), "  \"events_per_sec\": %.1f,\n",
                EventsPerSec);
  Out += Buf;
  Out += "  \"values\": {";
  for (size_t I = 0; I < Values.size(); ++I) {
    Out += I == 0 ? "\n" : ",\n";
    Out += "    \"";
    appendJsonEscaped(Out, Values[I].first);
    std::snprintf(Buf, sizeof(Buf), "\": %.6g", Values[I].second);
    Out += Buf;
  }
  Out += Values.empty() ? "}\n" : "\n  }\n";
  Out += "}\n";

  std::FILE *File = std::fopen(Path.string().c_str(), "w");
  if (!File) {
    std::fprintf(stderr, "warning: cannot write JSON report to %s\n",
                 Path.string().c_str());
    return false;
  }
  std::fwrite(Out.data(), 1, Out.size(), File);
  std::fclose(File);
  std::printf("JSON report written to %s\n", Path.string().c_str());
  return true;
}
