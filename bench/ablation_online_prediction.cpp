//===- bench/ablation_online_prediction.cpp - Online vs static routing -----===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Extension beyond the paper: the paper's predictor is trained once and
// frozen; this ablation measures what *online adaptation* buys.  Three
// routing policies replay the same test trace through the same arena
// allocator:
//
//   static — the paper's algorithm: the trained SiteDatabase's verdicts,
//            compiled to per-record bits (PredictedShortBits).
//   online — the static database warm-starts an OnlinePredictor; observed
//            deaths feed a per-site windowed CUSUM, flagged sites retrain
//            by majority vote and re-route mid-run.  The causal model is
//            compiled once into a frozen route plan (runtime/Retrainer.h),
//            so the replay itself stays jobs-invariant.
//   oracle — perfect routing from the traced lifetimes: the upper bound
//            any predictor can reach.
//
// Reported per workload: routing accuracy against the trained threshold,
// arena byte fraction, max heap size, and the online model's retrain
// count and final epoch.  --retrain-out writes the full per-site retrain
// timeline as JSON (the CI artifact).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Pipeline.h"
#include "runtime/Retrainer.h"
#include "sim/CompiledPrediction.h"
#include "sim/TraceSimulator.h"
#include "support/TableFormatter.h"

#include <fstream>
#include <iostream>

using namespace lifepred;

namespace {

/// One program's three-way results.
struct Row {
  RouteScore StaticScore, OnlineScore, OracleScore;
  ArenaSimResult StaticSim, OnlineSim, OracleSim;
  OnlineRoutePlan Plan;
};

/// Per-record oracle routes: short iff the traced lifetime is within the
/// threshold (never-freed is long).
std::vector<uint64_t> oracleRouteWords(const AllocationTrace &Trace,
                                       uint64_t Threshold) {
  std::vector<uint64_t> Words((Trace.size() + 63) / 64, 0);
  for (size_t Id = 0; Id < Trace.size(); ++Id)
    if (Trace.records()[Id].Lifetime <= Threshold)
      Words[Id >> 6] |= uint64_t(1) << (Id & 63);
  return Words;
}

/// Writes every program's retrain timeline as one JSON document.
bool writeRetrainTimeline(const std::string &Path,
                          const std::vector<ProgramTraces> &All,
                          const std::vector<Row> &Rows) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
    return false;
  }
  Out << "{\n  \"programs\": [\n";
  for (size_t I = 0; I < All.size(); ++I) {
    const OnlineRoutePlan &Plan = Rows[I].Plan;
    Out << "    {\n      \"program\": \"" << All[I].Model.Name << "\",\n"
        << "      \"window_bytes\": " << Plan.WindowBytes << ",\n"
        << "      \"threshold\": " << Plan.Threshold << ",\n"
        << "      \"epochs\": " << Plan.Epochs << ",\n"
        << "      \"sites_seen\": " << Plan.SitesSeen << ",\n"
        << "      \"deaths_observed\": " << Plan.DeathsObserved << ",\n"
        << "      \"retrains\": [\n";
    for (size_t R = 0; R < Plan.Retrains.size(); ++R) {
      const RetrainEvent &E = Plan.Retrains[R];
      Out << "        {\"window\": " << E.Window << ", \"clock\": " << E.Clock
          << ", \"site\": " << E.Site << ", \"old_route\": "
          << (E.OldRoute ? "\"short\"" : "\"long\"") << ", \"new_route\": "
          << (E.NewRoute ? "\"short\"" : "\"long\"")
          << ", \"window_short_deaths\": " << E.WindowShortDeaths
          << ", \"window_long_deaths\": " << E.WindowLongDeaths
          << ", \"gate_ppm\": " << E.GatePpm << ", \"epoch\": " << E.Epoch
          << "}" << (R + 1 < Plan.Retrains.size() ? "," : "") << "\n";
    }
    Out << "      ]\n    }" << (I + 1 < All.size() ? "," : "") << "\n";
  }
  Out << "  ]\n}\n";
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  if (!Cl.has("scale"))
    Options.Scale = 0.25;
  std::string RetrainOutPath = Cl.getString("retrain-out", "");
  printBanner("Ablation I",
              "online adaptive prediction vs the paper's frozen database",
              Options);

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();

  ThreadPool Pool(Options.Jobs);
  std::vector<ProgramTraces> All = makeAllTraces(Options, Pool);
  std::vector<CompiledTrace> Compiled = compileAllTraces(All, Pool, &Policy);

  // One task per (program, policy); all three replay the shared compiled
  // schedule, and the online route compile pass rides inside its task.
  std::vector<Row> Rows(All.size());
  uint64_t Events = 0;
  for (const ProgramTraces &Traces : All)
    Events += 3 * replayEventCount(Traces.Test);
  double Start = wallTimeSeconds();
  parallelForIndex(Pool, All.size() * 3, [&](size_t Task) {
    const ProgramTraces &Traces = All[Task / 3];
    const CompiledTrace &Test = Compiled[Task / 3];
    Row &R = Rows[Task / 3];

    Profile TrainProfile = profileTrace(Traces.Train, Policy);
    SiteDatabase DB = trainDatabase(TrainProfile, Policy);
    switch (Task % 3) {
    case 0: {
      PredictedShortBits Bits(Test, DB);
      R.StaticScore = scoreRoutes(Traces.Test, DB.threshold(),
                                  [&Bits](uint64_t Id) { return Bits.test(Id); });
      R.StaticSim = simulateArena(Test, DB, Traces.Model.CallsPerAlloc);
      break;
    }
    case 1: {
      OnlinePredictorConfig Config;
      Config.WarmStart = &DB;
      R.Plan = compileOnlineRoutes(Test, Config);
      DynamicRouteBits Routes(R.Plan.RouteWords);
      R.OnlineScore =
          scoreRoutes(Traces.Test, DB.threshold(),
                      [&R](uint64_t Id) { return R.Plan.testShort(Id); });
      R.OnlineSim =
          simulateArena(Test, DB, Routes, Traces.Model.CallsPerAlloc);
      break;
    }
    case 2: {
      DynamicRouteBits Routes(
          oracleRouteWords(Traces.Test, DB.threshold()));
      R.OracleScore = scoreRoutes(
          Traces.Test, DB.threshold(),
          [&Routes](uint64_t Id) { return Routes.test(Id); });
      R.OracleSim =
          simulateArena(Test, DB, Routes, Traces.Model.CallsPerAlloc);
      break;
    }
    }
  });
  double Wall = wallTimeSeconds() - Start;

  TableFormatter Table({"Program", "Policy", "Acc%", "Arena%", "MaxHeap(K)",
                        "Retrains", "Epochs"});
  JsonReport Report("ablation_online_prediction", Options);
  Report.setThroughput(Events, Wall);

  for (size_t I = 0; I < All.size(); ++I) {
    const Row &R = Rows[I];
    std::string Name = All[I].Model.Name;

    struct Line {
      const char *Policy;
      const RouteScore *Score;
      const ArenaSimResult *Sim;
    };
    const Line Lines[] = {{"static", &R.StaticScore, &R.StaticSim},
                          {"online", &R.OnlineScore, &R.OnlineSim},
                          {"oracle", &R.OracleScore, &R.OracleSim}};
    bool First = true;
    for (const Line &L : Lines) {
      Table.beginRow();
      Table.addCell(First ? Name : "");
      Table.addCell(L.Policy);
      Table.addPercent(L.Score->accuracyPercent(), 2);
      Table.addPercent(L.Sim->arenaBytesPercent(), 1);
      Table.addInt(static_cast<int64_t>(L.Sim->MaxHeapBytes / 1024));
      Table.addCell(L.Policy == Lines[1].Policy
                        ? std::to_string(R.Plan.Retrains.size())
                        : "-");
      Table.addCell(L.Policy == Lines[1].Policy
                        ? std::to_string(R.Plan.Epochs)
                        : "-");
      First = false;

      std::string Prefix = Name + "." + L.Policy;
      Report.add(Prefix + ".accuracy_pct", L.Score->accuracyPercent());
      Report.add(Prefix + ".arena_bytes_pct", L.Sim->arenaBytesPercent());
      Report.add(Prefix + ".max_heap_k",
                 static_cast<double>(L.Sim->MaxHeapBytes / 1024));
    }
    Report.add(Name + ".online.retrains",
               static_cast<double>(R.Plan.Retrains.size()));
    Report.add(Name + ".online.epochs", static_cast<double>(R.Plan.Epochs));
    Report.add(Name + ".online.sites_seen",
               static_cast<double>(R.Plan.SitesSeen));
    Report.add(Name + ".online.deaths_observed",
               static_cast<double>(R.Plan.DeathsObserved));
  }

  Table.print(std::cout);
  std::printf("\nReading: the online model never loses to its own warm "
              "start — frozen verdicts are the floor, and every re-route "
              "needs sustained CUSUM evidence — and on workloads whose "
              "phase behaviour the training run under-represents it claws "
              "back part of the static-to-oracle gap mid-run.  The oracle "
              "column is the ceiling: the accuracy left on the table is "
              "what no amount of adaptation at this site granularity can "
              "recover.\n");

  if (!RetrainOutPath.empty())
    writeRetrainTimeline(RetrainOutPath, All, Rows);
  Report.write();
  return 0;
}
