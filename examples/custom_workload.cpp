//===- examples/custom_workload.cpp - Building your own program model ------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Shows the workload-modeling API: declare a program as groups of
// allocation sites (call paths, sizes, lifetime distributions, rates),
// generate train/test traces from it, and push them through the full
// prediction-and-simulation pipeline.  Use this as a template to study how
// lifetime prediction would behave on *your* application's allocation
// profile.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sim/TraceSimulator.h"
#include "workloads/ModelBuilder.h"
#include "workloads/WorkloadRunner.h"

#include <cstdio>

using namespace lifepred;

namespace {

/// A toy web-server model: request parsing churns small short-lived
/// buffers, a response cache holds mixed-lifetime entries, and the routing
/// table is permanent.
ProgramModel webServerModel() {
  ProgramModel Model;
  Model.Name = "WEBSERVER";
  Model.Description = "toy HTTP server: requests, cache, routing table";
  Model.BaseObjects = 400000;
  Model.TargetHeapRefPercent = 60;
  Model.TestWeightSigma = 0.2; // Test traffic differs a little.
  Model.CallsPerAlloc = 8;

  std::vector<PathSegment> Request = {seg("main"), seg("event_loop"),
                                      seg("handle_request")};
  auto RequestLived = LifetimeDistribution::fromQuantiles(
      {{0, 64}, {0.5, 2000}, {1.0, 20000}});
  auto CacheLived = LifetimeDistribution::mixture(
      {{0.7, RequestLived},
       {0.3, LifetimeDistribution::logUniform(100000, 5 * 1000 * 1000)}});

  // Header/body buffers: die when the request completes.  They sit behind
  // one buffer-pool wrapper, so length-1 chains cannot tell them from the
  // cache entries below — prediction needs length >= 2.
  {
    GroupSpec G;
    G.BaseName = "req_buf";
    G.Count = 24;
    G.Prefix = Request;
    G.Suffix = {seg("pool_alloc")};
    G.Sizes = {64, 128, 256, 512};
    G.ByteShare = 0.75;
    G.Lifetime = RequestLived;
    G.RefsPerByte = 1.0;
    addGroup(Model, G);
  }
  // Response-cache entries: mostly short, sometimes pinned for minutes.
  {
    GroupSpec G;
    G.BaseName = "cache_entry";
    G.Count = 12;
    G.Prefix = Request;
    G.Suffix = {seg("pool_alloc")};
    G.Sizes = {64, 128, 256, 512};
    G.ByteShare = 0.24;
    G.Lifetime = CacheLived;
    G.RefsPerByte = 2.0;
    addGroup(Model, G);
  }
  // Routing table: loaded at startup, permanent.
  {
    GroupSpec G;
    G.BaseName = "route";
    G.Count = 2;
    G.Prefix = {seg("main"), seg("load_config")};
    G.Sizes = {96};
    G.ByteShare = 0.01;
    G.Lifetime = LifetimeDistribution::permanent();
    G.RefsPerByte = 3.0;
    G.BurstLength = 128; // Read in one batch.
    addGroup(Model, G);
  }
  return Model;
}

} // namespace

int main() {
  ProgramModel Model = webServerModel();
  FunctionRegistry Registry;
  RunOptions Run;
  Run.Kind = RunKind::Train;
  AllocationTrace Train = runWorkload(Model, Run, Registry);
  Run.Kind = RunKind::Test;
  AllocationTrace Test = runWorkload(Model, Run, Registry);
  std::printf("%s: %zu train / %zu test allocations, %zu distinct chains\n",
              Model.Name.c_str(), Train.size(), Test.size(),
              Train.chainCount());

  // How deep must the call-chain be for effective prediction?
  for (unsigned Length : {1u, 2u, 3u}) {
    PipelineResult R =
        trainAndEvaluate(Train, Test, SiteKeyPolicy::lastN(Length));
    std::printf("  length-%u chains: %.1f%% of bytes predicted "
                "short-lived (%.2f%% error)\n",
                Length, R.Report.predictedShortPercent(),
                R.Report.errorPercent());
  }

  // And what does the arena allocator buy at the best length?
  PipelineResult Best =
      trainAndEvaluate(Train, Test, SiteKeyPolicy::lastN(4));
  ArenaSimResult Arena =
      simulateArena(Test, Best.Database, Model.CallsPerAlloc);
  BaselineSimResult FF = simulateFirstFit(Test);
  std::printf("\narena allocator: %.1f%% of objects in arenas; "
              "alloc+free %.0f instr vs first fit's %.0f\n",
              Arena.arenaAllocPercent(), Arena.InstrLen4.total(),
              FF.Instr.total());
  return 0;
}
