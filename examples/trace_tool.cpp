//===- examples/trace_tool.cpp - Trace generation and inspection CLI -------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// A small command-line tool around the trace and database file formats:
//
//   trace_tool generate <program> <out.trace> [--scale=0.1] [--test]
//                          [--binary]
//       Generate a workload trace (text, or compact binary with --binary).
//   trace_tool stats <in.trace>
//       Print Table-2-style statistics for a trace file.
//   trace_tool train <in.trace> <out.sitedb> [--threshold=32768]
//       Profile a trace and save the predicted-short-lived site database.
//   trace_tool predict <in.trace> <in.sitedb>
//       Evaluate a saved database against a trace.
//   trace_tool emit-header <in.sitedb> <out.h>
//       Emit the database as a linkable C++ header (constexpr key table
//       plus an isPredictedShortLived() predicate).
//   trace_tool compile <program|in.trace> --out=<file.sched>
//                          [--scale=S] [--test] [--chunk-events=N]
//       Compile a workload (or an existing trace file) into the mmap-able
//       on-disk schedule format that the streamed replay tier consumes.
//   trace_tool schedule-info <file.sched>
//       Validate a schedule file's header and chunk index and print its
//       layout; corrupt or truncated files are rejected with a diagnostic
//       and a non-zero exit, never a crash.
//   trace_tool report <old.json> <new.json> [--tol=R] [--time-tol=R]
//       Diff two --json bench reports (same engine as bench_compare);
//       non-zero exit on regression.
//   trace_tool heatmap <program|in.trace> [--family=F] [--scale=S] [--test]
//                         [--stride=N] [--json=F] [--heatmap-out=F]
//                         [--trace-out=F]
//       Replay a workload through one allocator family (firstfit, bsd,
//       arena, or multiarena) with the heap observatory attached, and
//       render the address-space x byte-clock occupancy heatmap as ASCII
//       plus a fragmentation and latency summary.  --json writes a
//       bench_compare-gateable report, --heatmap-out a standalone heatmap
//       JSON, --trace-out chrome://tracing occupancy counters.
//   trace_tool history <history-dir> [--metric=GLOB] [--window=N] [--tol=R]
//       Render the perf-trajectory ledgers appended by bench_compare
//       --append-history: one sparkline per metric, flagging metrics whose
//       latest value regressed against the trailing window; exit 2 when
//       any metric is flagged.
//   trace_tool audit <program|all> [--scale=S] [--seed=N] [--jobs=J]
//                       [--json=F] [--audit-out=F] [--trace-out=F]
//       Run the Table 7 workload (train on the train trace, replay the
//       test trace through the predicting arena simulator) with a flight
//       recorder attached, and print the lifetime audit: per-site
//       misprediction forensics ranked by wasted bytes, and arena-pinning
//       attribution naming the survivor objects that delayed each reset.
//       --json writes a bench_compare-gateable report, --audit-out copies
//       the text report to a file, --trace-out adds chrome://tracing
//       arena-occupancy spans.
//   trace_tool drift <program|all> [--scale=S] [--seed=N] [--jobs=J]
//                       [--drift-window=B] [--drift-shape=SHAPE]
//                       [--json=F] [--drift-out=F] [--trace-out=F]
//       Run the Table 7 workload with the prediction drift observatory
//       attached: per-byte-clock-window confusion timelines, rolling
//       accuracy with CUSUM change-point flags, per-site observed-vs-
//       trained lifetime-quantile divergence, and misprediction cost
//       attribution (bytes pinned by false-shorts; bytes a correct short
//       call would have arena'd).  --drift-shape picks the drive path
//       (memory, stream, batch, or shard) — all four produce byte-
//       identical reports at any --jobs.  --json writes a
//       bench_compare-gateable report, --drift-out an ordered drift JSON,
//       --trace-out chrome://tracing accuracy/pinned-bytes tracks.
//   trace_tool retrain <program|all> [--scale=S] [--seed=N] [--jobs=J]
//                         [--window=B] [--limit=N] [--json=F]
//                         [--retrain-out=F] [--trace-out=F]
//       Run the Table 7 workload with the online predictor warm-started
//       from the trained database: print the applied re-route timeline
//       (window, byte clock, site, verdict flip, window evidence, CUSUM
//       gate), per-flipped-site forensics (observed lifetime median,
//       cumulative death mix, flip count), and the before/after routing
//       accuracy against the static database.  --json writes a
//       bench_compare-gateable report, --retrain-out the full timeline
//       JSON (same shape as the ablation bench's CI artifact),
//       --trace-out chrome://tracing retrain instant events.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/GeneratedAllocator.h"
#include "core/Pipeline.h"
#include "runtime/Retrainer.h"
#include "sim/CompiledPrediction.h"
#include "sim/MultiArenaSimulator.h"
#include "sim/SimTelemetry.h"
#include "sim/TraceSimulator.h"
#include "support/CommandLine.h"
#include "telemetry/DriftObservatory.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/FragmentationProbe.h"
#include "telemetry/HeapHeatmap.h"
#include "telemetry/LatencyRecorder.h"
#include "telemetry/PerfLedger.h"
#include "telemetry/ReportDiff.h"
#include "telemetry/TraceEventWriter.h"
#include "trace/ScheduleFile.h"
#include "trace/TraceBinaryIO.h"
#include "trace/TraceIO.h"
#include "trace/TraceStats.h"
#include "workloads/Programs.h"
#include "workloads/WorkloadRunner.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

using namespace lifepred;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trace_tool generate <program> <out.trace> "
               "[--scale=S] [--test]\n"
               "       trace_tool stats <in.trace>\n"
               "       trace_tool train <in.trace> <out.sitedb> "
               "[--threshold=T]\n"
               "       trace_tool predict <in.trace> <in.sitedb>\n"
               "       trace_tool emit-header <in.sitedb> <out.h>\n"
               "       trace_tool compile <program|in.trace> "
               "--out=<file.sched>\n"
               "                          [--scale=S] [--test] "
               "[--chunk-events=N]\n"
               "       trace_tool schedule-info <file.sched>\n"
               "       trace_tool report <old.json> <new.json> [--tol=R] "
               "[--time-tol=R] [--quiet]\n"
               "       trace_tool heatmap <program|in.trace> "
               "[--family=firstfit|bsd|arena|multiarena]\n"
               "                          [--scale=S] [--test] [--stride=N] "
               "[--json=F]\n"
               "                          [--heatmap-out=F] [--trace-out=F]\n"
               "       trace_tool history <history-dir> [--metric=GLOB] "
               "[--window=N] [--tol=R]\n"
               "                          [--limit=N]\n"
               "       trace_tool audit <program|all> [--scale=S] "
               "[--seed=N] [--jobs=J]\n"
               "                        [--json=F] [--audit-out=F] "
               "[--trace-out=F]\n"
               "       trace_tool drift <program|all> [--scale=S] "
               "[--seed=N] [--jobs=J]\n"
               "                        [--drift-window=B] "
               "[--drift-shape=memory|stream|batch|shard]\n"
               "                        [--json=F] [--drift-out=F] "
               "[--trace-out=F]\n"
               "       trace_tool retrain <program|all> [--scale=S] "
               "[--seed=N] [--jobs=J]\n"
               "                          [--window=B] [--limit=N] "
               "[--json=F]\n"
               "                          [--retrain-out=F] "
               "[--trace-out=F]\n");
  return 1;
}

/// The audit subcommand: the Table 7 train/test workload replayed through
/// the predicting arena simulator with a flight recorder attached.  One
/// recorder per program, read back in program order, so the report is
/// bit-identical at any --jobs.
int runAudit(const CommandLine &Cl, const std::string &Target) {
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  if (Target != "all")
    Options.OnlyProgram = Target;

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  ThreadPool Pool(Options.Jobs);
  std::vector<ProgramTraces> All = makeAllTraces(Options, Pool);
  if (All.empty()) {
    std::fprintf(stderr, "error: unknown program '%s'\n", Target.c_str());
    return 1;
  }

  std::unique_ptr<TraceEventWriter> TraceWriter = makeTraceWriter(Options);
  JsonReport Report("audit", Options);

  std::vector<Profile> TrainProfiles(All.size());
  std::vector<SiteDatabase> DBs(All.size());
  std::vector<StatsRegistry> PerProgram(All.size());
  std::vector<std::unique_ptr<FlightRecorder>> Recorders(All.size());
  FlightRecorder::Config RecorderConfig;
  RecorderConfig.Seed = Options.Seed;
  for (auto &Recorder : Recorders)
    Recorder = std::make_unique<FlightRecorder>(RecorderConfig);

  uint64_t Events = 0;
  for (const ProgramTraces &Traces : All)
    Events += replayEventCount(Traces.Test);
  double Start = wallTimeSeconds();
  parallelForIndex(Pool, All.size(), [&](size_t Index) {
    TrainProfiles[Index] = profileTrace(All[Index].Train, Policy);
    DBs[Index] = trainDatabase(TrainProfiles[Index], Policy);
    SimTelemetry Telemetry;
    Telemetry.Registry = &PerProgram[Index];
    Telemetry.Recorder = Recorders[Index].get();
    simulateArena(All[Index].Test, DBs[Index],
                  All[Index].Model.CallsPerAlloc, CostModel(),
                  ArenaAllocator::Config(), &Telemetry);
  });
  Report.setThroughput(Events, wallTimeSeconds() - Start);

  std::FILE *AuditFile = nullptr;
  if (!Options.AuditOutPath.empty()) {
    AuditFile = std::fopen(Options.AuditOutPath.c_str(), "w");
    if (!AuditFile)
      std::fprintf(stderr, "warning: cannot write --audit-out=%s\n",
                   Options.AuditOutPath.c_str());
  }

  StatsRegistry Telemetry;
  for (size_t I = 0; I < All.size(); ++I) {
    std::string Name = All[I].Model.Name;
    Telemetry.merge(PerProgram[I]);
    TrainedQuantileMap Trained =
        buildTrainedQuantiles(All[I].Test, TrainProfiles[I], Policy);
    AuditReport Audit =
        buildAuditReport(*Recorders[I], &Trained, Name + ".arena");
    printAuditReport(Audit, stdout);
    if (AuditFile)
      printAuditReport(Audit, AuditFile);
    exportAuditTelemetry(Audit, Telemetry, "audit." + Name + ".");
    Report.add(Name + ".audit.wasted_bytes",
               static_cast<double>(Audit.wastedBytes()));
    Report.add(Name + ".audit.dead_bytes_pinned",
               static_cast<double>(Audit.TotalDeadByteIntegral));
    Report.add(Name + ".audit.false_short",
               static_cast<double>(Audit.FalseShort));
    Report.add(Name + ".audit.pinned_episodes",
               static_cast<double>(Audit.PinnedEpisodes));
    if (TraceWriter)
      emitArenaOccupancy(Audit, *TraceWriter);
  }
  if (AuditFile)
    std::fclose(AuditFile);
  Report.attachTelemetry(&Telemetry);
  Report.write();
  if (TraceWriter)
    TraceWriter->close();
  return 0;
}

/// How a drift replay feeds the observatory.  Every shape reduces to the
/// same per-allocation recordAlloc stream — a pure function of (trace,
/// predicted bits, threshold) — so their observatories are byte-identical;
/// the shapes exist to prove the windowed merge is drive-order invariant.
enum class DriftShape { Memory, Stream, Batch, Shard };

/// The pure drift fill over schedule events [First, Last).
void fillDriftRange(const EventSchedule &Schedule,
                    const AllocationTrace &Trace,
                    const PredictedShortBits &Predicted, uint64_t Threshold,
                    DriftObservatory &Obs, size_t First, size_t Last) {
  const uint32_t *Ids = Schedule.taggedIds();
  const uint64_t *Clocks = Schedule.clocks();
  const AllocRecord *Records = Trace.records().data();
  for (size_t Event = First; Event < Last; ++Event) {
    uint32_t Tagged = Ids[Event];
    if (Tagged & EventSchedule::FreeBit)
      continue;
    const AllocRecord &Record = Records[Tagged];
    Obs.recordAlloc(Clocks[Event], Record.ChainIndex, Record.Size,
                    Predicted.test(Tagged), Record.Lifetime,
                    Record.Lifetime <= Threshold);
  }
}

/// Batched drive shape: same stream via forEachEventBatched's permuted
/// within-batch order (windowed adds commute, so the result is identical).
class DriftBatchConsumer : public ScheduleConsumer<DriftBatchConsumer> {
public:
  DriftBatchConsumer(const AllocationTrace &Trace,
                     const PredictedShortBits &Predicted, uint64_t Threshold,
                     DriftObservatory &Obs)
      : Records(Trace.records().data()), Predicted(Predicted),
        Threshold(Threshold), Obs(Obs) {}

  /// Two routes keyed by the predicted bit: the batched replay genuinely
  /// permutes within-batch event order, so equality with the sequential
  /// shape demonstrates the observatory's updates commute.
  uint32_t routeCount() const { return 2; }
  uint32_t routeOf(uint32_t Tagged) const {
    if (Tagged & EventSchedule::FreeBit)
      return 0;
    return Predicted.test(Tagged) ? 1u : 0u;
  }

  void onAlloc(uint32_t Id, uint64_t Clock) {
    const AllocRecord &Record = Records[Id];
    Obs.recordAlloc(Clock, Record.ChainIndex, Record.Size,
                    Predicted.test(Id), Record.Lifetime,
                    Record.Lifetime <= Threshold);
  }

  void onFree(uint32_t, uint64_t) {}

private:
  const AllocRecord *Records;
  const PredictedShortBits &Predicted;
  uint64_t Threshold;
  DriftObservatory &Obs;
};

/// Fixed shard width for the sharded drive shape — independent of --jobs,
/// so shard boundaries (and the merged result) never depend on the worker
/// count.
constexpr size_t DriftShardEvents = 64 * 1024;

/// The drift subcommand: the Table 7 train/test workload scored window by
/// window.  One observatory per program, reports printed and exported in
/// program order, so output is bit-identical at any --jobs and across
/// every --drift-shape.
int runDrift(const CommandLine &Cl, const std::string &Target) {
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  if (Target != "all")
    Options.OnlyProgram = Target;

  const std::string ShapeName = Cl.getString("drift-shape", "memory");
  DriftShape Shape;
  if (ShapeName == "memory")
    Shape = DriftShape::Memory;
  else if (ShapeName == "stream")
    Shape = DriftShape::Stream;
  else if (ShapeName == "batch")
    Shape = DriftShape::Batch;
  else if (ShapeName == "shard")
    Shape = DriftShape::Shard;
  else {
    std::fprintf(stderr,
                 "error: unknown --drift-shape '%s' (expected memory, "
                 "stream, batch, or shard)\n",
                 ShapeName.c_str());
    return 1;
  }

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  ThreadPool Pool(Options.Jobs);
  std::vector<ProgramTraces> All = makeAllTraces(Options, Pool);
  if (All.empty()) {
    std::fprintf(stderr, "error: unknown program '%s'\n", Target.c_str());
    return 1;
  }

  std::unique_ptr<TraceEventWriter> TraceWriter = makeTraceWriter(Options);
  JsonReport Report("drift", Options);

  std::vector<Profile> TrainProfiles(All.size());
  std::vector<SiteDatabase> DBs(All.size());
  std::vector<StatsRegistry> PerProgram(All.size());
  std::vector<std::unique_ptr<DriftObservatory>> Observatories(All.size());

  uint64_t Events = 0;
  for (const ProgramTraces &Traces : All)
    Events += replayEventCount(Traces.Test);
  double Start = wallTimeSeconds();

  auto driftConfigFor = [&Options](const EventSchedule &Schedule,
                                   const SiteDatabase &DB) {
    DriftConfig Config;
    Config.EndClock = Schedule.endClock();
    Config.WindowBytes = Options.DriftWindowBytes;
    Config.Threshold = DB.threshold();
    return Config;
  };

  if (Shape != DriftShape::Shard) {
    parallelForIndex(Pool, All.size(), [&](size_t Index) {
      TrainProfiles[Index] = profileTrace(All[Index].Train, Policy);
      DBs[Index] = trainDatabase(TrainProfiles[Index], Policy);
      const SiteDatabase &DB = DBs[Index];
      CompiledTrace Compiled(All[Index].Test, Policy);
      const EventSchedule &Schedule = Compiled.schedule();
      auto Obs = std::make_unique<DriftObservatory>(
          driftConfigFor(Schedule, DB));
      switch (Shape) {
      case DriftShape::Memory: {
        SimTelemetry Telemetry;
        Telemetry.Registry = &PerProgram[Index];
        Telemetry.Drift = Obs.get();
        simulateArena(Compiled, DB, All[Index].Model.CallsPerAlloc,
                      CostModel(), ArenaAllocator::Config(), &Telemetry);
        break;
      }
      case DriftShape::Stream: {
        PredictedShortBits Predicted(Compiled, DB);
        fillDriftRange(Schedule, All[Index].Test, Predicted, DB.threshold(),
                       *Obs, 0, Schedule.size());
        break;
      }
      case DriftShape::Batch: {
        PredictedShortBits Predicted(Compiled, DB);
        DriftBatchConsumer Consumer(All[Index].Test, Predicted,
                                    DB.threshold(), *Obs);
        forEachEventBatched(Schedule, Consumer, DriftShardEvents);
        break;
      }
      case DriftShape::Shard:
        break; // Handled below; unreachable here.
      }
      Observatories[Index] = std::move(Obs);
    });
  } else {
    // Sharded shape: programs serial, shards fan out on the pool, merged
    // in shard-index order.  Shard boundaries are fixed event counts, so
    // the merged observatory is identical at any --jobs.
    parallelForIndex(Pool, All.size(), [&](size_t Index) {
      TrainProfiles[Index] = profileTrace(All[Index].Train, Policy);
      DBs[Index] = trainDatabase(TrainProfiles[Index], Policy);
    });
    for (size_t Index = 0; Index < All.size(); ++Index) {
      const SiteDatabase &DB = DBs[Index];
      CompiledTrace Compiled(All[Index].Test, Policy);
      const EventSchedule &Schedule = Compiled.schedule();
      PredictedShortBits Predicted(Compiled, DB);
      DriftConfig Config = driftConfigFor(Schedule, DB);
      auto Obs = std::make_unique<DriftObservatory>(Config);
      size_t Shards =
          (Schedule.size() + DriftShardEvents - 1) / DriftShardEvents;
      std::vector<std::unique_ptr<DriftObservatory>> PerShard(Shards);
      parallelForIndex(Pool, Shards, [&](size_t Shard) {
        auto Local = std::make_unique<DriftObservatory>(Config);
        size_t First = Shard * DriftShardEvents;
        size_t Last = std::min(Schedule.size(), First + DriftShardEvents);
        fillDriftRange(Schedule, All[Index].Test, Predicted, DB.threshold(),
                       *Local, First, Last);
        PerShard[Shard] = std::move(Local);
      });
      for (const auto &Local : PerShard)
        Obs->merge(*Local);
      Observatories[Index] = std::move(Obs);
    }
  }
  Report.setThroughput(Events, wallTimeSeconds() - Start);

  std::string DriftJson = "{\n  \"schema_version\": 1,\n  \"reports\": [\n";
  StatsRegistry Telemetry;
  uint64_t TotalWindows = 0;
  uint64_t TotalChangePoints = 0;
  bool HaveWorst = false;
  DriftSiteScore Worst;
  for (size_t I = 0; I < All.size(); ++I) {
    const std::string &Name = All[I].Model.Name;
    Telemetry.merge(PerProgram[I]);
    TrainedQuantileMap Trained =
        buildTrainedQuantiles(All[I].Test, TrainProfiles[I], Policy);
    DriftReport Drift =
        buildDriftReport(*Observatories[I], &Trained, Name + ".arena");
    printDriftReport(Drift, stdout);
    writeDriftJson(Drift, DriftJson, "    ");
    DriftJson += I + 1 != All.size() ? ",\n" : "\n";
    exportDriftTelemetry(Drift, Telemetry, "drift." + Name + ".");
    if (TraceWriter)
      emitDriftTrack(Drift, *TraceWriter,
                     900 + static_cast<unsigned>(I) * 2);
    TotalWindows += Drift.Windows.size();
    TotalChangePoints += Drift.changePointCount();
    Report.add(Name + ".drift.windows",
               static_cast<double>(Drift.Windows.size()));
    Report.add(Name + ".drift.changepoint_count",
               static_cast<double>(Drift.changePointCount()));
    Report.add(Name + ".drift.accuracy_mean_ppm",
               static_cast<double>(Drift.MeanAccuracyPpm));
    Report.add(Name + ".drift.pinned_bytes",
               static_cast<double>(Drift.PinnedBytes));
    if (Drift.hasWorstSite()) {
      Report.add(Name + ".drift.worst_site_score", Drift.worstSite().Score);
      if (!HaveWorst || Drift.worstSite().Score > Worst.Score) {
        HaveWorst = true;
        Worst = Drift.worstSite();
      }
    }
  }
  DriftJson += "  ]\n}\n";
  Report.add("drift.windows", static_cast<double>(TotalWindows));
  Report.add("drift.changepoint_count",
             static_cast<double>(TotalChangePoints));
  if (HaveWorst) {
    Report.add("drift.worst_site_id", static_cast<double>(Worst.Site));
    Report.add("drift.worst_site_window",
               static_cast<double>(Worst.Window));
    Report.add("drift.worst_site_score", Worst.Score);
  }
  Report.attachTelemetry(&Telemetry);
  Report.write();

  if (!Options.DriftOutPath.empty()) {
    std::FILE *File = std::fopen(Options.DriftOutPath.c_str(), "w");
    if (!File) {
      std::fprintf(stderr, "error: cannot write --drift-out=%s\n",
                   Options.DriftOutPath.c_str());
      return 1;
    }
    std::fwrite(DriftJson.data(), 1, DriftJson.size(), File);
    std::fclose(File);
    std::printf("drift JSON written to %s\n", Options.DriftOutPath.c_str());
  }
  if (TraceWriter)
    TraceWriter->close();
  return 0;
}

/// The retrain subcommand: online-prediction forensics.  The warm-started
/// model is compiled once per program into a frozen route plan (the same
/// pass every replay shape consumes), and the report shows exactly which
/// sites the CUSUM flagged, when, on what evidence, and what the applied
/// re-routes bought against the static database.
int runRetrain(const CommandLine &Cl, const std::string &Target) {
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  if (Target != "all")
    Options.OnlyProgram = Target;
  long WindowArg = Cl.getInt("window", 0);
  long LimitArg = Cl.getInt("limit", 20);
  size_t Limit = LimitArg > 0 ? static_cast<size_t>(LimitArg) : SIZE_MAX;

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  ThreadPool Pool(Options.Jobs);
  std::vector<ProgramTraces> All = makeAllTraces(Options, Pool);
  if (All.empty()) {
    std::fprintf(stderr, "error: unknown program '%s'\n", Target.c_str());
    return 1;
  }

  std::unique_ptr<TraceEventWriter> TraceWriter = makeTraceWriter(Options);
  JsonReport Report("retrain", Options);

  struct ProgramResult {
    OnlineRoutePlan Plan;
    RouteScore Static, Online;
  };
  std::vector<ProgramResult> Results(All.size());

  uint64_t Events = 0;
  for (const ProgramTraces &Traces : All)
    Events += replayEventCount(Traces.Test);
  double Start = wallTimeSeconds();
  parallelForIndex(Pool, All.size(), [&](size_t Index) {
    Profile TrainProfile = profileTrace(All[Index].Train, Policy);
    SiteDatabase DB = trainDatabase(TrainProfile, Policy);
    CompiledTrace Compiled(All[Index].Test, Policy);
    OnlinePredictorConfig Config;
    Config.WarmStart = &DB;
    if (WindowArg > 0)
      Config.WindowBytes = static_cast<uint64_t>(WindowArg);
    ProgramResult &R = Results[Index];
    R.Plan = compileOnlineRoutes(Compiled, Config);
    PredictedShortBits Bits(Compiled, DB);
    R.Static = scoreRoutes(All[Index].Test, DB.threshold(),
                           [&Bits](uint64_t Id) { return Bits.test(Id); });
    R.Online =
        scoreRoutes(All[Index].Test, DB.threshold(),
                    [&R](uint64_t Id) { return R.Plan.testShort(Id); });
  });
  Report.setThroughput(Events, wallTimeSeconds() - Start);

  for (size_t I = 0; I < All.size(); ++I) {
    const std::string &Name = All[I].Model.Name;
    const ProgramResult &R = Results[I];
    const OnlineRoutePlan &Plan = R.Plan;

    std::printf("== %s: %zu retrains across %u epochs (window %llu bytes, "
                "%llu sites, %llu deaths observed) ==\n",
                Name.c_str(), Plan.Retrains.size(), Plan.Epochs,
                static_cast<unsigned long long>(Plan.WindowBytes),
                static_cast<unsigned long long>(Plan.SitesSeen),
                static_cast<unsigned long long>(Plan.DeathsObserved));
    std::printf("  accuracy: static %.2f%% -> online %.2f%%\n",
                R.Static.accuracyPercent(), R.Online.accuracyPercent());

    size_t Shown = std::min(Plan.Retrains.size(), Limit);
    for (size_t E = 0; E < Shown; ++E) {
      const RetrainEvent &Event = Plan.Retrains[E];
      std::printf("  window %4llu clock %12llu site %20llu %s->%s "
                  "(win %llu short / %llu long, gate %lld ppm, epoch %u)\n",
                  static_cast<unsigned long long>(Event.Window),
                  static_cast<unsigned long long>(Event.Clock),
                  static_cast<unsigned long long>(Event.Site),
                  Event.OldRoute ? "short" : "long",
                  Event.NewRoute ? "short" : "long",
                  static_cast<unsigned long long>(Event.WindowShortDeaths),
                  static_cast<unsigned long long>(Event.WindowLongDeaths),
                  static_cast<long long>(Event.GatePpm), Event.Epoch);
      if (TraceWriter)
        TraceWriter->instantAt(Name + ".retrain." + std::to_string(Event.Site),
                               "retrain", 950 + static_cast<unsigned>(I),
                               Event.Clock);
    }
    if (Shown < Plan.Retrains.size())
      std::printf("  ... %zu more (raise --limit)\n",
                  Plan.Retrains.size() - Shown);

    // Per-site forensics for the sites that actually flipped.
    for (const OnlineSiteSnapshot &Site : Plan.Sites) {
      if (Site.RouteFlips == 0)
        continue;
      std::printf("  site %20llu: %u flips, final %s, %llu short / %llu "
                  "long deaths, observed median lifetime %llu\n",
                  static_cast<unsigned long long>(Site.Site), Site.RouteFlips,
                  Site.Route ? "short" : "long",
                  static_cast<unsigned long long>(Site.ShortDeaths),
                  static_cast<unsigned long long>(Site.LongDeaths),
                  static_cast<unsigned long long>(Site.ObservedQ50));
    }

    Report.add(Name + ".retrain.count",
               static_cast<double>(Plan.Retrains.size()));
    Report.add(Name + ".retrain.epochs", static_cast<double>(Plan.Epochs));
    Report.add(Name + ".retrain.sites_seen",
               static_cast<double>(Plan.SitesSeen));
    Report.add(Name + ".retrain.deaths_observed",
               static_cast<double>(Plan.DeathsObserved));
    Report.add(Name + ".retrain.static_accuracy_ppm",
               static_cast<double>(R.Static.accuracyPpm()));
    Report.add(Name + ".retrain.online_accuracy_ppm",
               static_cast<double>(R.Online.accuracyPpm()));
  }
  Report.write();

  std::string RetrainOutPath = Cl.getString("retrain-out", "");
  if (!RetrainOutPath.empty()) {
    std::ofstream Out(RetrainOutPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write --retrain-out=%s\n",
                   RetrainOutPath.c_str());
      return 1;
    }
    Out << "{\n  \"programs\": [\n";
    for (size_t I = 0; I < All.size(); ++I) {
      const OnlineRoutePlan &Plan = Results[I].Plan;
      Out << "    {\n      \"program\": \"" << All[I].Model.Name << "\",\n"
          << "      \"window_bytes\": " << Plan.WindowBytes << ",\n"
          << "      \"epochs\": " << Plan.Epochs << ",\n"
          << "      \"retrains\": [\n";
      for (size_t E = 0; E < Plan.Retrains.size(); ++E) {
        const RetrainEvent &Event = Plan.Retrains[E];
        Out << "        {\"window\": " << Event.Window
            << ", \"clock\": " << Event.Clock << ", \"site\": " << Event.Site
            << ", \"old_route\": "
            << (Event.OldRoute ? "\"short\"" : "\"long\"")
            << ", \"new_route\": "
            << (Event.NewRoute ? "\"short\"" : "\"long\"")
            << ", \"gate_ppm\": " << Event.GatePpm
            << ", \"epoch\": " << Event.Epoch << "}"
            << (E + 1 < Plan.Retrains.size() ? "," : "") << "\n";
      }
      Out << "      ]\n    }" << (I + 1 < All.size() ? "," : "") << "\n";
    }
    Out << "  ]\n}\n";
    std::printf("retrain JSON written to %s\n", RetrainOutPath.c_str());
  }
  if (TraceWriter)
    TraceWriter->close();
  return 0;
}

std::optional<AllocationTrace> loadTrace(const std::string &Path);

/// The heatmap subcommand: one replay with every observatory sink
/// attached, rendered for a human at the terminal.
int runHeatmap(const CommandLine &Cl, const std::string &Source) {
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  const std::string Family = Cl.getString("family", "firstfit");
  long StrideArg = Cl.getInt("stride", 64 * 1024);
  const uint64_t Stride = StrideArg > 0 ? uint64_t(StrideArg) : 1;

  // The source is either a workload program name or a trace file, the
  // same resolution order as `compile`.
  std::optional<AllocationTrace> Trace;
  double CallsPerAlloc = 1.0;
  for (ProgramModel &Model : allPrograms()) {
    if (Model.Name != Source)
      continue;
    RunOptions Run;
    Run.Scale = Cl.getDouble("scale", 0.1);
    Run.Kind = Cl.has("test") ? RunKind::Test : RunKind::Train;
    Run.Seed = Options.Seed;
    FunctionRegistry Registry;
    Trace = runWorkload(Model, Run, Registry);
    CallsPerAlloc = Model.CallsPerAlloc;
    break;
  }
  if (!Trace) {
    Trace = loadTrace(Source);
    if (!Trace)
      return 1;
  }

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  CompiledTrace Test(*Trace, Policy);

  FragmentationProbe Probe(Stride);
  HeapHeatmap::Config MapConfig;
  MapConfig.ClockStride = Stride;
  HeapHeatmap Map(MapConfig);
  LatencyRecorder Latency;
  StatsRegistry Registry;
  SimTelemetry Telemetry;
  Telemetry.Registry = &Registry;
  Telemetry.Fragmentation = &Probe;
  Telemetry.Heatmap = &Map;
  Telemetry.Latency = &Latency;

  double Start = wallTimeSeconds();
  if (Family == "firstfit") {
    simulateFirstFit(Test, CostModel(), FirstFitAllocator::Config(),
                     &Telemetry);
  } else if (Family == "bsd") {
    simulateBsd(Test, CostModel(), BsdAllocator::Config(), &Telemetry);
  } else if (Family == "arena") {
    // Self prediction: the database trains on the replayed trace itself.
    SiteDatabase DB = trainDatabase(profileTrace(*Trace, Policy), Policy);
    simulateArena(Test, DB, CallsPerAlloc, CostModel(),
                  ArenaAllocator::Config(), &Telemetry);
  } else if (Family == "multiarena") {
    ClassDatabase DB = trainClassDatabase(profileTrace(*Trace, Policy),
                                          Policy, {16 * 1024, 32 * 1024});
    simulateMultiArena(Test, DB, MultiArenaAllocator::Config(), &Telemetry);
  } else {
    std::fprintf(stderr,
                 "error: unknown family '%s' (expected firstfit, bsd, "
                 "arena, or multiarena)\n",
                 Family.c_str());
    return 1;
  }
  double Wall = wallTimeSeconds() - Start;

  std::printf("heatmap: %s over %s, %zu events, byte-clock stride %llu\n",
              Family.c_str(), Source.c_str(), Trace->size() * 2,
              static_cast<unsigned long long>(Stride));
  Map.printAscii(stdout);

  FragmentationProbe::Drift Drift = Probe.driftEstimate();
  std::printf("fragmentation: %llu samples, index %llu ppm (peak %llu), "
              "largest free block %llu B\n",
              static_cast<unsigned long long>(Probe.sampleCount()),
              static_cast<unsigned long long>(Probe.lastFragIndexPpm()),
              static_cast<unsigned long long>(Probe.maxFragIndexPpm()),
              static_cast<unsigned long long>(Probe.largestFreeBlock()));
  std::printf("spans observed: %llu free, %llu live; heap drift %s%llu B "
              "over %llu byte-clock\n",
              static_cast<unsigned long long>(Probe.freeSpans().count()),
              static_cast<unsigned long long>(Probe.liveSpans().count()),
              Drift.ShrinkBytes ? "-" : "+",
              static_cast<unsigned long long>(
                  Drift.ShrinkBytes ? Drift.ShrinkBytes : Drift.GrowthBytes),
              static_cast<unsigned long long>(Drift.WindowClock));
  std::printf("alloc latency: %llu samples, p50 %.0f ns, p99 %.0f ns; "
              "free p99 %.0f ns\n",
              static_cast<unsigned long long>(
                  Latency.samples(LatencyRecorder::OpAlloc)),
              Latency.quantileNanos(LatencyRecorder::OpAlloc, 0.50),
              Latency.quantileNanos(LatencyRecorder::OpAlloc, 0.99),
              Latency.quantileNanos(LatencyRecorder::OpFree, 0.99));

  if (!Options.JsonPath.empty()) {
    JsonReport Report("heatmap", Options);
    Report.setThroughput(Trace->size() * 2, Wall);
    Report.attachTelemetry(&Registry);
    Report.write();
  }
  if (!Options.HeatmapOutPath.empty()) {
    std::string Out;
    Map.writeJson(Out, "");
    Out += "\n";
    std::FILE *File = std::fopen(Options.HeatmapOutPath.c_str(), "w");
    if (!File) {
      std::fprintf(stderr, "error: cannot write --heatmap-out=%s\n",
                   Options.HeatmapOutPath.c_str());
      return 1;
    }
    std::fwrite(Out.data(), 1, Out.size(), File);
    std::fclose(File);
    std::printf("heatmap JSON written to %s\n",
                Options.HeatmapOutPath.c_str());
  }
  if (std::unique_ptr<TraceEventWriter> Writer = makeTraceWriter(Options)) {
    Map.exportTrace(*Writer);
    Writer->close();
    std::printf("chrome://tracing counters written to %s\n",
                Options.TraceOutPath.c_str());
  }
  return 0;
}

/// The history subcommand: renders the perf-trajectory ledgers and exits
/// 2 when any metric's latest value regressed against its trailing window.
int runHistory(const CommandLine &Cl, const std::string &Dir) {
  HistoryOptions Options;
  Options.MetricGlob = Cl.getString("metric", "*");
  long Window = Cl.getInt("window", 8);
  if (Window > 0)
    Options.Window = static_cast<size_t>(Window);
  Options.Tolerance = Cl.getDouble("tol", 0.10);
  long Limit = Cl.getInt("limit", 0);
  if (Limit > 0)
    Options.Limit = static_cast<size_t>(Limit);
  int Flagged = renderHistory(Dir, Options, stdout);
  if (Flagged < 0) {
    std::fprintf(stderr, "error: no ledgers under %s\n", Dir.c_str());
    return 1;
  }
  return Flagged > 0 ? 2 : 0;
}

std::optional<AllocationTrace> loadTrace(const std::string &Path) {
  // Try binary first (its magic makes the format self-identifying),
  // then fall back to text.
  {
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      return std::nullopt;
    }
    if (auto Trace = readTraceBinary(In))
      return Trace;
  }
  std::ifstream In(Path);
  auto Trace = readTrace(In);
  if (!Trace)
    std::fprintf(stderr, "error: %s is not a valid trace file\n",
                 Path.c_str());
  return Trace;
}

} // namespace

int main(int Argc, char **Argv) {
  // The report subcommand forwards its raw arguments (including --tol=
  // flags) to the bench_compare engine before CommandLine sees them.
  if (Argc >= 2 && std::string(Argv[1]) == "report")
    return runBenchCompare(std::vector<std::string>(Argv + 2, Argv + Argc));

  CommandLine Cl(Argc, Argv);
  const auto &Args = Cl.positional();
  if (Args.empty())
    return usage();
  const std::string &Command = Args[0];

  if (Command == "audit") {
    if (Args.size() != 2)
      return usage();
    return runAudit(Cl, Args[1]);
  }

  if (Command == "drift") {
    if (Args.size() != 2)
      return usage();
    return runDrift(Cl, Args[1]);
  }

  if (Command == "heatmap") {
    if (Args.size() != 2)
      return usage();
    return runHeatmap(Cl, Args[1]);
  }

  if (Command == "retrain") {
    if (Args.size() != 2)
      return usage();
    return runRetrain(Cl, Args[1]);
  }

  if (Command == "history") {
    if (Args.size() != 2)
      return usage();
    return runHistory(Cl, Args[1]);
  }

  if (Command == "generate") {
    if (Args.size() != 3)
      return usage();
    for (ProgramModel &Model : allPrograms()) {
      if (Model.Name != Args[1])
        continue;
      RunOptions Run;
      Run.Scale = Cl.getDouble("scale", 0.1);
      Run.Kind = Cl.has("test") ? RunKind::Test : RunKind::Train;
      Run.Seed = static_cast<uint64_t>(Cl.getInt("seed", 0x1993));
      FunctionRegistry Registry;
      AllocationTrace Trace = runWorkload(Model, Run, Registry);
      std::ofstream Out(Args[2], Cl.has("binary")
                                     ? std::ios::binary | std::ios::out
                                     : std::ios::out);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n", Args[2].c_str());
        return 1;
      }
      if (Cl.has("binary"))
        writeTraceBinary(Trace, Out);
      else
        writeTrace(Trace, Out);
      std::printf("wrote %zu allocation events (%llu bytes allocated) to "
                  "%s\n",
                  Trace.size(),
                  static_cast<unsigned long long>(Trace.totalBytes()),
                  Args[2].c_str());
      return 0;
    }
    std::fprintf(stderr, "error: unknown program '%s'\n", Args[1].c_str());
    return 1;
  }

  if (Command == "compile") {
    if (Args.size() != 2)
      return usage();
    std::string OutPath = Cl.getString("out", "");
    if (OutPath.empty()) {
      std::fprintf(stderr, "error: compile requires --out=<file.sched>\n");
      return 1;
    }
    // The source is either a workload program name or a trace file.
    std::optional<AllocationTrace> Trace;
    for (ProgramModel &Model : allPrograms()) {
      if (Model.Name != Args[1])
        continue;
      RunOptions Run;
      Run.Scale = Cl.getDouble("scale", 0.1);
      Run.Kind = Cl.has("test") ? RunKind::Test : RunKind::Train;
      Run.Seed = static_cast<uint64_t>(Cl.getInt("seed", 0x1993));
      FunctionRegistry Registry;
      Trace = runWorkload(Model, Run, Registry);
      break;
    }
    if (!Trace) {
      Trace = loadTrace(Args[1]);
      if (!Trace)
        return 1;
    }
    ScheduleFileWriter::Config Config;
    long ChunkEvents = Cl.getInt("chunk-events", 0);
    if (ChunkEvents > 0)
      Config.EventsPerChunk = static_cast<uint64_t>(ChunkEvents);
    ScheduleFileWriter Writer(OutPath, Config);
    Writer.append(*Trace);
    if (!Writer.finish()) {
      std::fprintf(stderr, "error: %s\n", Writer.error().c_str());
      return 1;
    }
    std::printf("wrote %llu events (%llu allocs, %llu slots, %llu chunks) "
                "to %s\n",
                static_cast<unsigned long long>(Writer.eventCount()),
                static_cast<unsigned long long>(Writer.allocCount()),
                static_cast<unsigned long long>(Writer.slotCount()),
                static_cast<unsigned long long>(Writer.chunkCount()),
                OutPath.c_str());
    return 0;
  }

  if (Command == "schedule-info") {
    if (Args.size() != 2)
      return usage();
    std::string Error;
    auto File = ScheduleFile::open(Args[1], Error);
    if (!File) {
      std::fprintf(stderr, "error: %s: %s\n", Args[1].c_str(),
                   Error.c_str());
      return 1;
    }
    std::printf("schedule:         %s\n", Args[1].c_str());
    std::printf("file bytes:       %llu\n",
                static_cast<unsigned long long>(File->fileBytes()));
    std::printf("events:           %llu\n",
                static_cast<unsigned long long>(File->eventCount()));
    std::printf("allocs:           %llu\n",
                static_cast<unsigned long long>(File->allocCount()));
    std::printf("slots:            %llu\n",
                static_cast<unsigned long long>(File->slotCount()));
    std::printf("end clock:        %llu\n",
                static_cast<unsigned long long>(File->endClock()));
    std::printf("alloc bytes:      %llu\n",
                static_cast<unsigned long long>(File->totalAllocBytes()));
    std::printf("max live bytes:   %llu\n",
                static_cast<unsigned long long>(File->maxLiveBytes()));
    std::printf("events per chunk: %llu\n",
                static_cast<unsigned long long>(File->eventsPerChunk()));
    std::printf("chunks:           %llu\n",
                static_cast<unsigned long long>(File->chunkCount()));
    std::printf("live-in entries:  %llu\n",
                static_cast<unsigned long long>(File->liveInCount()));
    // Per-chunk summary, elided in the middle for huge schedules.
    uint64_t Chunks = File->chunkCount();
    for (uint64_t I = 0; I < Chunks; ++I) {
      if (Chunks > 12 && I == 6) {
        std::printf("  ... %llu chunks elided ...\n",
                    static_cast<unsigned long long>(Chunks - 12));
        I = Chunks - 6;
      }
      const ScheduleChunkInfo &Info = File->chunk(I);
      std::printf("  chunk %4llu: events [%llu, %llu)  start clock %llu  "
                  "live-in %llu objs / %llu B  peak live %llu B\n",
                  static_cast<unsigned long long>(I),
                  static_cast<unsigned long long>(Info.FirstEvent),
                  static_cast<unsigned long long>(Info.FirstEvent +
                                                  Info.EventCount),
                  static_cast<unsigned long long>(Info.StartClock),
                  static_cast<unsigned long long>(Info.LiveInCount),
                  static_cast<unsigned long long>(Info.LiveInBytes),
                  static_cast<unsigned long long>(Info.MaxLiveBytes));
    }
    return 0;
  }

  if (Command == "stats") {
    if (Args.size() != 2)
      return usage();
    auto Trace = loadTrace(Args[1]);
    if (!Trace)
      return 1;
    TraceStats Stats = computeTraceStats(*Trace);
    std::printf("objects:          %llu\n",
                static_cast<unsigned long long>(Stats.TotalObjects));
    std::printf("bytes:            %llu\n",
                static_cast<unsigned long long>(Stats.TotalBytes));
    std::printf("max live objects: %llu\n",
                static_cast<unsigned long long>(Stats.MaxLiveObjects));
    std::printf("max live bytes:   %llu\n",
                static_cast<unsigned long long>(Stats.MaxLiveBytes));
    std::printf("distinct chains:  %zu\n", Stats.DistinctChains);
    std::printf("heap refs:        %.1f%%\n", Stats.heapRefPercent());
    return 0;
  }

  if (Command == "train") {
    if (Args.size() != 3)
      return usage();
    auto Trace = loadTrace(Args[1]);
    if (!Trace)
      return 1;
    SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
    TrainingOptions Options;
    Options.Threshold =
        static_cast<uint64_t>(Cl.getInt("threshold", 32 * 1024));
    SiteDatabase DB =
        trainDatabase(profileTrace(*Trace, Policy), Policy, Options);
    std::ofstream Out(Args[2]);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", Args[2].c_str());
      return 1;
    }
    DB.save(Out);
    std::printf("trained %zu short-lived sites -> %s\n", DB.size(),
                Args[2].c_str());
    return 0;
  }

  if (Command == "predict") {
    if (Args.size() != 3)
      return usage();
    auto Trace = loadTrace(Args[1]);
    if (!Trace)
      return 1;
    std::ifstream In(Args[2]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Args[2].c_str());
      return 1;
    }
    auto DB = SiteDatabase::load(In);
    if (!DB) {
      std::fprintf(stderr, "error: %s is not a valid site database\n",
                   Args[2].c_str());
      return 1;
    }
    PredictionReport Report = evaluatePrediction(*Trace, *DB);
    std::printf("sites used:      %llu of %zu\n",
                static_cast<unsigned long long>(Report.SitesUsed),
                DB->size());
    std::printf("predicted short: %.1f%% of bytes\n",
                Report.predictedShortPercent());
    std::printf("error bytes:     %.2f%%\n", Report.errorPercent());
    std::printf("actually short:  %.1f%%\n", Report.actualShortPercent());
    return 0;
  }

  if (Command == "emit-header") {
    if (Args.size() != 3)
      return usage();
    std::ifstream In(Args[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Args[1].c_str());
      return 1;
    }
    auto DB = SiteDatabase::load(In);
    if (!DB) {
      std::fprintf(stderr, "error: %s is not a valid site database\n",
                   Args[1].c_str());
      return 1;
    }
    std::ofstream Out(Args[2]);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", Args[2].c_str());
      return 1;
    }
    emitSiteDatabaseHeader(*DB, Out);
    std::printf("emitted %zu-site predictor -> %s\n", DB->size(),
                Args[2].c_str());
    return 0;
  }

  return usage();
}
