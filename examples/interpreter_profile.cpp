//===- examples/interpreter_profile.cpp - Profile-guided real heap ---------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// The paper's end-to-end story on a *real* (non-simulated) application: a
// small arithmetic-expression interpreter, instrumented with
// LIFEPRED_FUNCTION shadow-stack frames.  A training run profiles its
// allocation lifetimes and trains a site database; the optimized run
// allocates through PredictingHeap, which bump-allocates the short-lived
// expression nodes in real arenas while the interpreter's persistent
// variable bindings go to the general heap.
//
//===----------------------------------------------------------------------===//

#include "runtime/Instrument.h"
#include "runtime/PredictingHeap.h"
#include "runtime/RuntimeProfiler.h"
#include "support/Random.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace lifepred;

namespace {

/// Expression node allocated from a pluggable heap.
struct Node {
  char Op;         // '+', '*', or 'n' for a literal.
  double Value;    // Literal value.
  Node *Lhs = nullptr;
  Node *Rhs = nullptr;
};

/// The interpreter: generates random expressions, evaluates them, and
/// retains occasional results in an environment (the long-lived data).
class Interpreter {
public:
  RuntimeProfiler *Profiler = nullptr;
  PredictingHeap *Heap = nullptr;

  Node *newNode() {
    LIFEPRED_NAMED_FUNCTION("newNode");
    void *P;
    if (Heap) {
      P = Heap->allocate(sizeof(Node));
    } else {
      P = ::operator new(sizeof(Node));
      if (Profiler)
        Profiler->recordAlloc(P, sizeof(Node));
    }
    return new (P) Node();
  }

  void deleteTree(Node *N) {
    if (!N)
      return;
    deleteTree(N->Lhs);
    deleteTree(N->Rhs);
    if (Heap) {
      Heap->deallocate(N);
    } else {
      if (Profiler)
        Profiler->recordFree(N);
      ::operator delete(N);
    }
  }

  Node *parseExpression(unsigned Depth) {
    LIFEPRED_NAMED_FUNCTION("parseExpression");
    Node *N = newNode();
    if (Depth == 0 || Random.nextBool(0.3)) {
      N->Op = 'n';
      N->Value = Random.nextDouble() * 10;
      return N;
    }
    N->Op = Random.nextBool(0.5) ? '+' : '*';
    N->Lhs = parseExpression(Depth - 1);
    N->Rhs = parseExpression(Depth - 1);
    return N;
  }

  double eval(const Node *N) {
    LIFEPRED_NAMED_FUNCTION("eval");
    switch (N->Op) {
    case 'n':
      return N->Value;
    case '+':
      return eval(N->Lhs) + eval(N->Rhs);
    default:
      return eval(N->Lhs) * eval(N->Rhs);
    }
  }

  /// Binds a result into the environment (long-lived binding cell).
  void bindResult(double Value) {
    LIFEPRED_NAMED_FUNCTION("bindResult");
    Node *Cell = newNode();
    Cell->Op = 'n';
    Cell->Value = Value;
    Environment.push_back(Cell);
  }

  double run(unsigned Statements) {
    LIFEPRED_NAMED_FUNCTION("run");
    double Total = 0;
    for (unsigned I = 0; I < Statements; ++I) {
      Node *Expr = parseExpression(4);
      double Value = eval(Expr);
      Total += Value;
      deleteTree(Expr); // Expression trees are short-lived...
      if (I % 64 == 0)
        bindResult(Value); // ...bindings persist.
    }
    return Total;
  }

  void teardown() {
    for (Node *Cell : Environment)
      deleteTree(Cell);
    Environment.clear();
  }

  Rng Random{0xbeef};
  std::vector<Node *> Environment;
};

} // namespace

int main() {
  const unsigned Statements = 20000;

  // --- Training run: profile lifetimes behind the shadow stack. ---
  RuntimeProfiler Profiler(SiteKeyPolicy::lastN(4));
  Interpreter TrainRun;
  TrainRun.Profiler = &Profiler;
  double TrainResult = TrainRun.run(Statements);
  TrainRun.teardown();
  SiteDatabase DB = Profiler.train();
  std::printf("training run: checksum %.1f, %zu sites predicted "
              "short-lived\n",
              TrainResult, DB.size());

  // --- Optimized run: same program, predicting heap. ---
  PredictingHeap Heap(DB);
  Interpreter TestRun;
  TestRun.Heap = &Heap;
  double TestResult = TestRun.run(Statements);
  TestRun.teardown();

  const PredictingHeap::Stats &S = Heap.stats();
  std::printf("optimized run: checksum %.1f\n", TestResult);
  std::printf("  arena allocations:   %llu (%.1f%%)\n",
              static_cast<unsigned long long>(S.ArenaAllocs),
              100.0 * static_cast<double>(S.ArenaAllocs) /
                  static_cast<double>(S.ArenaAllocs + S.GeneralAllocs));
  std::printf("  general allocations: %llu (persistent bindings)\n",
              static_cast<unsigned long long>(S.GeneralAllocs));
  std::printf("  arena resets:        %llu (batch reclamation)\n",
              static_cast<unsigned long long>(S.Resets));
  std::printf("  fallbacks:           %llu\n",
              static_cast<unsigned long long>(S.Fallbacks));
  return 0;
}
