//===- examples/quickstart.cpp - Five-minute tour of the library -----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Builds a tiny allocation trace by hand, trains a lifetime predictor on
// it, evaluates the prediction, and replays the trace through the
// lifetime-predicting arena allocator.  Start here.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sim/TraceSimulator.h"

#include <cstdio>

using namespace lifepred;

int main() {
  // 1. An allocation trace.  Real users record one with RuntimeProfiler or
  //    generate one with the workload models; here we write it by hand.
  //    Lifetimes are measured in bytes allocated (the paper's clock).
  AllocationTrace Trace;
  uint32_t TempSite = Trace.internChain(CallChain{/*main=*/0, /*parse=*/1});
  uint32_t TableSite = Trace.internChain(CallChain{/*main=*/0, /*build=*/2});
  for (int I = 0; I < 10000; ++I) {
    // Parser temporaries: die within ~2 KB of further allocation.
    Trace.append({/*Lifetime=*/2000, /*Size=*/32, TempSite, /*Refs=*/4});
    if (I % 100 == 0) // Symbol-table nodes: live ~1 MB of allocation.
      Trace.append({1000000, 48, TableSite, 8});
  }

  // 2. Train: profile the trace per allocation site and select every site
  //    whose objects all died before the 32 KB threshold.
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  PipelineResult Result = trainAndEvaluate(Trace, Trace, Policy);
  std::printf("sites observed:        %zu\n",
              Result.TrainingProfile.Sites.size());
  std::printf("sites predicted short: %zu\n", Result.Database.size());
  std::printf("bytes predicted short: %.1f%% (error %.2f%%)\n",
              Result.Report.predictedShortPercent(),
              Result.Report.errorPercent());

  // 3. Simulate the paper's arena allocator against plain first fit.
  ArenaSimResult Arena =
      simulateArena(Trace, Result.Database, /*CallsPerAlloc=*/5);
  BaselineSimResult FirstFit = simulateFirstFit(Trace);
  std::printf("\narena allocator: %.1f%% of objects bump-allocated in the "
              "64 KB arena area\n",
              Arena.arenaAllocPercent());
  std::printf("max heap: first-fit %llu KB, arena %llu KB\n",
              static_cast<unsigned long long>(FirstFit.MaxHeapBytes / 1024),
              static_cast<unsigned long long>(Arena.MaxHeapBytes / 1024));
  std::printf("instructions per alloc+free: first-fit %.0f, arena %.0f\n",
              FirstFit.Instr.total(), Arena.InstrLen4.total());
  return 0;
}
