//===- examples/allocator_shootout.cpp - Compare allocators on a model -----===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Runs one of the five modeled programs (default GAWK) through BSD, first
// fit, and the lifetime-predicting arena allocator, and prints a compact
// comparison: heap size, CPU cost, and arena fractions.  Flags:
//
//   --program=CFRAC|ESPRESSO|GAWK|GHOST|PERL
//   --scale=0.25          object-count multiplier
//   --threshold=32768     short-lived threshold in bytes
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sim/TraceSimulator.h"
#include "support/CommandLine.h"
#include "support/TableFormatter.h"
#include "workloads/Programs.h"
#include "workloads/WorkloadRunner.h"

#include <cstdio>
#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  std::string Name = Cl.getString("program", "GAWK");

  ProgramModel Model;
  bool Found = false;
  for (ProgramModel &M : allPrograms()) {
    if (M.Name == Name) {
      Model = M;
      Found = true;
    }
  }
  if (!Found) {
    std::fprintf(stderr,
                 "error: unknown program '%s' (try CFRAC, ESPRESSO, GAWK, "
                 "GHOST, or PERL)\n",
                 Name.c_str());
    return 1;
  }

  RunOptions Run;
  Run.Scale = Cl.getDouble("scale", 0.25);
  Run.Seed = static_cast<uint64_t>(Cl.getInt("seed", 0x1993));
  FunctionRegistry Registry;
  Run.Kind = RunKind::Train;
  AllocationTrace Train = runWorkload(Model, Run, Registry);
  Run.Kind = RunKind::Test;
  AllocationTrace Test = runWorkload(Model, Run, Registry);

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  TrainingOptions Options;
  Options.Threshold =
      static_cast<uint64_t>(Cl.getInt("threshold", 32 * 1024));
  SiteDatabase DB =
      trainDatabase(profileTrace(Train, Policy), Policy, Options);
  PredictionReport Report = evaluatePrediction(Test, DB);

  std::printf("%s (%s)\n", Model.Name.c_str(), Model.Description.c_str());
  std::printf("trained %zu short-lived sites (threshold %llu bytes); "
              "true prediction covers %.1f%% of bytes, %.2f%% error\n\n",
              DB.size(),
              static_cast<unsigned long long>(Options.Threshold),
              Report.predictedShortPercent(), Report.errorPercent());

  CostModel Costs;
  BaselineSimResult Bsd = simulateBsd(Test, Costs);
  BaselineSimResult FF = simulateFirstFit(Test, Costs);
  ArenaSimResult Arena =
      simulateArena(Test, DB, Model.CallsPerAlloc, Costs);

  TableFormatter Table({"Allocator", "MaxHeap(K)", "instr/alloc",
                        "instr/free", "instr/(a+f)", "Arena%"});
  Table.beginRow();
  Table.addCell("BSD (Kingsley)");
  Table.addInt(static_cast<int64_t>(Bsd.MaxHeapBytes / 1024));
  Table.addReal(Bsd.Instr.Alloc, 0);
  Table.addReal(Bsd.Instr.Free, 0);
  Table.addReal(Bsd.Instr.total(), 0);
  Table.addCell("-");
  Table.beginRow();
  Table.addCell("First fit (Knuth)");
  Table.addInt(static_cast<int64_t>(FF.MaxHeapBytes / 1024));
  Table.addReal(FF.Instr.Alloc, 0);
  Table.addReal(FF.Instr.Free, 0);
  Table.addReal(FF.Instr.total(), 0);
  Table.addCell("-");
  Table.beginRow();
  Table.addCell("Arena (lifetime-predicting)");
  Table.addInt(static_cast<int64_t>(Arena.MaxHeapBytes / 1024));
  Table.addReal(Arena.InstrLen4.Alloc, 0);
  Table.addReal(Arena.InstrLen4.Free, 0);
  Table.addReal(Arena.InstrLen4.total(), 0);
  Table.addPercent(Arena.arenaAllocPercent());
  Table.print(std::cout);

  std::printf("\n(arena heap includes its fixed 64 KB arena area; "
              "Arena%% = objects bump-allocated there)\n");
  return 0;
}
