//===- tests/core_test.cpp - Lifetime-prediction core tests ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "core/PredictionEvaluator.h"
#include "core/Profiler.h"
#include "core/SiteDatabase.h"
#include "core/GeneratedAllocator.h"
#include "core/LifetimeClassifier.h"
#include "callchain/SiteKey.h"
#include "core/ThresholdSelector.h"
#include "core/Trainer.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace lifepred;

namespace {

/// Builds a trace with two sites: site A (chain {1,2}, size 16) allocating
/// only short-lived objects and site B (chain {1,3}, size 16) allocating a
/// long-lived one.
AllocationTrace twoSiteTrace() {
  AllocationTrace T;
  uint32_t A = T.internChain(CallChain{1, 2});
  uint32_t B = T.internChain(CallChain{1, 3});
  for (int I = 0; I < 10; ++I)
    T.append({100, 16, A, 2});
  T.append({100000, 16, B, 2});
  for (int I = 0; I < 5; ++I)
    T.append({200, 16, B, 2});
  // Pad the trace so the final objects' effective lifetimes are their
  // scheduled ones.
  for (int I = 0; I < 30; ++I)
    T.append({10, 4096, A, 1});
  return T;
}

} // namespace

TEST(SiteKeyTest, CompleteChainPrunesRecursion) {
  SiteKeyPolicy P = SiteKeyPolicy::completeChain();
  CallChain Recursive = {1, 2, 2, 2, 3};
  CallChain Flat = {1, 2, 3};
  EXPECT_EQ(siteKey(P, Recursive, 16), siteKey(P, Flat, 16));
}

TEST(SiteKeyTest, LastNDoesNotPrune) {
  SiteKeyPolicy P = SiteKeyPolicy::lastN(4);
  CallChain Recursive = {1, 2, 2, 2, 3};
  CallChain Flat = {1, 2, 3};
  EXPECT_NE(siteKey(P, Recursive, 16), siteKey(P, Flat, 16));
  // But chains agreeing on the last 4 callers coincide.
  CallChain LongA = {9, 9, 2, 2, 2, 3};
  EXPECT_EQ(siteKey(P, Recursive, 16), siteKey(P, LongA, 16));
}

TEST(SiteKeyTest, SizeRoundingMapsNearbySizes) {
  SiteKeyPolicy P = SiteKeyPolicy::completeChain(4);
  CallChain C = {1, 2};
  EXPECT_EQ(siteKey(P, C, 21), siteKey(P, C, 24));
  EXPECT_EQ(siteKey(P, C, 22), siteKey(P, C, 24));
  EXPECT_NE(siteKey(P, C, 24), siteKey(P, C, 25));
  EXPECT_NE(siteKey(P, C, 20), siteKey(P, C, 24));
}

TEST(SiteKeyTest, SizeOnlyIgnoresChain) {
  SiteKeyPolicy P = SiteKeyPolicy::sizeOnly();
  EXPECT_EQ(siteKey(P, CallChain{1, 2}, 16), siteKey(P, CallChain{7}, 16));
  EXPECT_NE(siteKey(P, CallChain{1, 2}, 16), siteKey(P, CallChain{1, 2}, 32));
}

TEST(SiteKeyTest, EncryptedUsesXorKey) {
  ChainEncryption Enc;
  Enc.setId(1, 0x1111);
  Enc.setId(2, 0x2222);
  SiteKeyPolicy P = SiteKeyPolicy::encrypted(Enc);
  // Commutative: the encrypted key cannot tell {1,2} from {2,1}.
  EXPECT_EQ(siteKey(P, CallChain{1, 2}, 16), siteKey(P, CallChain{2, 1}, 16));
}

TEST(EffectiveLifetimeTest, ClampsToExit) {
  AllocRecord R;
  R.Lifetime = 1000;
  EXPECT_EQ(effectiveLifetime(R, 100, 2000), 1000u);
  EXPECT_EQ(effectiveLifetime(R, 1500, 2000), 500u);
  R.Lifetime = NeverFreed;
  EXPECT_EQ(effectiveLifetime(R, 100, 2000), 1900u);
  EXPECT_EQ(effectiveLifetime(R, 2000, 2000), 1u); // Floor of one byte.
}

TEST(ProfilerTest, AggregatesPerSite) {
  AllocationTrace T = twoSiteTrace();
  Profile P = profileTrace(T, SiteKeyPolicy::completeChain());
  EXPECT_EQ(P.TotalObjects, T.size());
  EXPECT_EQ(P.TotalBytes, T.totalBytes());
  // Sites: A@16, B@16, A@4096.
  EXPECT_EQ(P.Sites.size(), 3u);

  SiteKey KeyA = siteKey(SiteKeyPolicy::completeChain(), CallChain{1, 2}, 16);
  ASSERT_TRUE(P.Sites.count(KeyA));
  EXPECT_EQ(P.Sites.at(KeyA).Objects, 10u);
  EXPECT_EQ(P.Sites.at(KeyA).Bytes, 160u);
  EXPECT_EQ(P.Sites.at(KeyA).MaxLifetime, 100u);

  SiteKey KeyB = siteKey(SiteKeyPolicy::completeChain(), CallChain{1, 3}, 16);
  ASSERT_TRUE(P.Sites.count(KeyB));
  EXPECT_EQ(P.Sites.at(KeyB).Objects, 6u);
  EXPECT_EQ(P.Sites.at(KeyB).MaxLifetime, 100000u);
}

TEST(TrainerTest, SelectsOnlyAllShortSites) {
  AllocationTrace T = twoSiteTrace();
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  Profile P = profileTrace(T, Policy);
  SiteDatabase DB = trainDatabase(P, Policy);
  // Site B has one 100000-byte-lived object: rejected.
  EXPECT_TRUE(DB.contains(siteKey(Policy, CallChain{1, 2}, 16)));
  EXPECT_FALSE(DB.contains(siteKey(Policy, CallChain{1, 3}, 16)));
  EXPECT_TRUE(DB.contains(siteKey(Policy, CallChain{1, 2}, 4096)));
  EXPECT_EQ(DB.size(), 2u);
}

TEST(TrainerTest, ThresholdIsStrict) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace T;
  uint32_t C = T.internChain(CallChain{1});
  T.append({32768, 16, C, 0}); // Exactly the threshold: not short.
  for (int I = 0; I < 20; ++I)
    T.append({10, 4096, C, 0});
  Profile P = profileTrace(T, Policy);
  TrainingOptions Opt;
  Opt.Threshold = 32768;
  SiteDatabase DB = trainDatabase(P, Policy, Opt);
  EXPECT_FALSE(DB.contains(siteKey(Policy, CallChain{1}, 16)));
  Opt.Threshold = 32770;
  SiteDatabase DB2 = trainDatabase(P, Policy, Opt);
  EXPECT_TRUE(DB2.contains(siteKey(Policy, CallChain{1}, 16)));
}

TEST(TrainerTest, MinObjectsFiltersRareSites) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace T;
  uint32_t Rare = T.internChain(CallChain{1});
  uint32_t Common = T.internChain(CallChain{2});
  T.append({10, 16, Rare, 0});
  for (int I = 0; I < 50; ++I)
    T.append({10, 16, Common, 0});
  for (int I = 0; I < 20; ++I)
    T.append({10, 4096, Common, 0});
  Profile P = profileTrace(T, Policy);
  TrainingOptions Opt;
  Opt.MinObjects = 5;
  SiteDatabase DB = trainDatabase(P, Policy, Opt);
  EXPECT_FALSE(DB.contains(siteKey(Policy, CallChain{1}, 16)));
  EXPECT_TRUE(DB.contains(siteKey(Policy, CallChain{2}, 16)));
}

TEST(EvaluatorTest, SelfPredictionHasZeroError) {
  // The paper's observation: training and testing on the same input can
  // never mispredict, because only all-short sites are selected.
  AllocationTrace T = twoSiteTrace();
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  PipelineResult R = trainAndEvaluate(T, T, Policy);
  EXPECT_EQ(R.Report.ErrorBytes, 0u);
  EXPECT_GT(R.Report.PredictedShortBytes, 0u);
}

TEST(EvaluatorTest, CountsSitesUsedOnlyWhenObserved) {
  AllocationTrace Train = twoSiteTrace();
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  Profile P = profileTrace(Train, Policy);
  SiteDatabase DB = trainDatabase(P, Policy);
  EXPECT_EQ(DB.size(), 2u);

  // A test trace exercising only one of the two trained sites.
  AllocationTrace Test;
  uint32_t A = Test.internChain(CallChain{1, 2});
  for (int I = 0; I < 5; ++I)
    Test.append({100, 16, A, 1});
  for (int I = 0; I < 20; ++I)
    Test.append({10, 64, Test.internChain(CallChain{9}), 1});
  PredictionReport Report = evaluatePrediction(Test, DB);
  EXPECT_EQ(Report.SitesUsed, 1u);
  EXPECT_EQ(Report.PredictedShortBytes, 80u);
}

TEST(EvaluatorTest, ErrorBytesCountPredictedLongLived) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  // Train: site all short.
  AllocationTrace Train;
  uint32_t C = Train.internChain(CallChain{1});
  for (int I = 0; I < 10; ++I)
    Train.append({10, 16, C, 0});
  for (int I = 0; I < 20; ++I)
    Train.append({10, 4096, Train.internChain(CallChain{2}), 0});
  SiteDatabase DB = trainDatabase(profileTrace(Train, Policy), Policy);

  // Test: same site now allocates a long-lived object.
  AllocationTrace Test;
  uint32_t C2 = Test.internChain(CallChain{1});
  Test.append({500000, 16, C2, 0});
  for (int I = 0; I < 200; ++I)
    Test.append({10, 4096, Test.internChain(CallChain{2}), 0});
  PredictionReport Report = evaluatePrediction(Test, DB);
  EXPECT_EQ(Report.ErrorBytes, 16u);
  // The padding site is also trained short-lived; its test objects are
  // short, so they count as correctly predicted bytes.
  EXPECT_EQ(Report.PredictedShortBytes, 200u * 4096u);
}

TEST(EvaluatorTest, NewRefPercentIncludesNonHeapRefs) {
  AllocationTrace T;
  uint32_t C = T.internChain(CallChain{1});
  for (int I = 0; I < 10; ++I)
    T.append({10, 16, C, 5}); // 50 heap refs to predicted objects.
  T.setNonHeapRefs(50);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  PipelineResult R = trainAndEvaluate(T, T, Policy);
  EXPECT_DOUBLE_EQ(R.Report.newRefPercent(), 50.0);
}

TEST(SiteDatabaseTest, SaveLoadRoundTrip) {
  SiteKeyPolicy Policy = SiteKeyPolicy::lastN(4, 8);
  SiteDatabase DB(Policy, 16384);
  DB.insert(123456789);
  DB.insert(987654321);
  std::stringstream SS;
  DB.save(SS);
  auto Loaded = SiteDatabase::load(SS);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->size(), 2u);
  EXPECT_TRUE(Loaded->contains(123456789));
  EXPECT_TRUE(Loaded->contains(987654321));
  EXPECT_FALSE(Loaded->contains(5));
  EXPECT_EQ(Loaded->threshold(), 16384u);
  EXPECT_EQ(Loaded->policy().Mode, SiteKeyMode::LastN);
  EXPECT_EQ(Loaded->policy().Length, 4u);
  EXPECT_EQ(Loaded->policy().SizeRounding, 8u);
}

TEST(SiteDatabaseTest, LoadRejectsGarbage) {
  std::stringstream A("bogus\n");
  EXPECT_FALSE(SiteDatabase::load(A).has_value());
  std::stringstream B("sitedb v1\nsite notanumber\n");
  EXPECT_FALSE(SiteDatabase::load(B).has_value());
  std::stringstream C("sitedb v1\npolicy martian 0 4\n");
  EXPECT_FALSE(SiteDatabase::load(C).has_value());
}

TEST(SiteDatabaseTest, PredictShortLivedHelper) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB(Policy, 32768);
  DB.insert(siteKey(Policy, CallChain{1, 2}, 16));
  EXPECT_TRUE(DB.predictShortLived(CallChain{1, 2}, 16));
  EXPECT_TRUE(DB.predictShortLived(CallChain{1, 2}, 14)); // Rounds to 16.
  EXPECT_FALSE(DB.predictShortLived(CallChain{1, 2}, 32));
  EXPECT_FALSE(DB.predictShortLived(CallChain{1, 3}, 16));
}

TEST(ThresholdSelectorTest, PicksKneeOfCoverageCurve) {
  // Three sites: lifetimes under 4 KB (60% of bytes), under 24 KB (30%),
  // and under 300 KB (10%).  Coverage saturates at 32 KB; the knee should
  // land there, not at the 512 KB candidate that also covers site three.
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace T;
  uint32_t A = T.internChain(CallChain{1});
  uint32_t B = T.internChain(CallChain{2});
  uint32_t C = T.internChain(CallChain{3});
  uint32_t Pad = T.internChain(CallChain{4});
  for (int I = 0; I < 600; ++I)
    T.append({3000, 100, A, 0});
  for (int I = 0; I < 300; ++I)
    T.append({20000, 100, B, 0});
  for (int I = 0; I < 10; ++I)
    T.append({300000, 100, C, 0});
  // Long-lived padding keeps every lifetime effective without adding
  // qualifying bytes at any threshold.
  for (int I = 0; I < 200; ++I)
    T.append({NeverFreed, 4096, Pad, 0});
  Profile P = profileTrace(T, Policy);

  ThresholdSelection S = selectThreshold(P);
  EXPECT_EQ(S.Threshold, 32u * 1024);
  ASSERT_FALSE(S.Candidates.empty());
  // The candidate table is monotone in coverage.
  for (size_t I = 1; I < S.Candidates.size(); ++I)
    EXPECT_GE(S.Candidates[I].CoveragePercent,
              S.Candidates[I - 1].CoveragePercent);
}

TEST(ThresholdSelectorTest, ArenaCapExcludesLargeThresholds) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace T;
  uint32_t A = T.internChain(CallChain{1});
  for (int I = 0; I < 100; ++I)
    T.append({100000, 100, A, 0});
  for (int I = 0; I < 100; ++I)
    T.append({10, 4096, A, 0});
  Profile P = profileTrace(T, Policy);

  ThresholdSelectorOptions Options;
  Options.MaxArenaBytes = 64 * 1024; // Candidates above 32 KB excluded.
  ThresholdSelection S = selectThreshold(P, Options);
  for (const ThresholdCandidate &C : S.Candidates)
    EXPECT_LE(C.ImpliedArenaBytes, 64u * 1024);
}

TEST(ThresholdSelectorTest, ExplicitCandidatesRespected) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace T;
  uint32_t A = T.internChain(CallChain{1});
  for (int I = 0; I < 50; ++I)
    T.append({100, 16, A, 0});
  for (int I = 0; I < 50; ++I)
    T.append({10, 4096, A, 0});
  Profile P = profileTrace(T, Policy);

  ThresholdSelectorOptions Options;
  Options.Candidates = {1024, 4096};
  ThresholdSelection S = selectThreshold(P, Options);
  EXPECT_EQ(S.Candidates.size(), 2u);
  EXPECT_EQ(S.Threshold, 1024u);
}

TEST(SiteKeyTest, TypeOnlyIgnoresChainAndSize) {
  SiteKeyPolicy P = SiteKeyPolicy::typeOnly();
  AllocRecord A;
  A.Size = 16;
  A.TypeId = 7;
  AllocRecord B;
  B.Size = 64;
  B.TypeId = 7;
  AllocRecord C;
  C.Size = 16;
  C.TypeId = 8;
  EXPECT_EQ(siteKeyForRecord(P, 111, A), siteKeyForRecord(P, 222, B));
  EXPECT_NE(siteKeyForRecord(P, 111, A), siteKeyForRecord(P, 111, C));
}

TEST(SiteKeyTest, TypeAndSizeSeparatesSizesWithinType) {
  SiteKeyPolicy P = SiteKeyPolicy::typeAndSize();
  AllocRecord A;
  A.Size = 16;
  A.TypeId = 7;
  AllocRecord B;
  B.Size = 64;
  B.TypeId = 7;
  AllocRecord C;
  C.Size = 18; // Rounds to 20... same class as 17-20.
  C.TypeId = 7;
  AllocRecord D;
  D.Size = 17;
  D.TypeId = 7;
  EXPECT_NE(siteKeyForRecord(P, 0, A), siteKeyForRecord(P, 0, B));
  EXPECT_EQ(siteKeyForRecord(P, 0, C), siteKeyForRecord(P, 0, D));
}

TEST(SiteKeyTest, TypePoliciesRoundTripThroughDatabase) {
  SiteDatabase DB(SiteKeyPolicy::typeAndSize(8), 16384);
  DB.insert(42);
  std::stringstream SS;
  DB.save(SS);
  auto Loaded = SiteDatabase::load(SS);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->policy().Mode, SiteKeyMode::TypeAndSize);
  EXPECT_EQ(Loaded->policy().SizeRounding, 8u);
}

TEST(TypePredictionTest, SharedTypeMixesLifetimesButChainSeparates) {
  // Two sites allocate the same struct: one short-lived, one long-lived.
  // Type-based training must reject the type; chain-based training keeps
  // the short site.
  AllocationTrace T;
  uint32_t ShortChain = T.internChain(CallChain{1, 2});
  uint32_t LongChain = T.internChain(CallChain{1, 3});
  for (int I = 0; I < 50; ++I) {
    AllocRecord R;
    R.Lifetime = 100;
    R.Size = 24;
    R.ChainIndex = ShortChain;
    R.TypeId = 5;
    T.append(R);
  }
  {
    AllocRecord R;
    R.Lifetime = 900000;
    R.Size = 24;
    R.ChainIndex = LongChain;
    R.TypeId = 5;
    T.append(R);
  }
  for (int I = 0; I < 300; ++I) {
    AllocRecord R;
    R.Lifetime = 10;
    R.Size = 4096;
    R.ChainIndex = ShortChain;
    R.TypeId = 6;
    T.append(R);
  }

  PipelineResult ByType =
      trainAndEvaluate(T, T, SiteKeyPolicy::typeOnly());
  PipelineResult ByChain =
      trainAndEvaluate(T, T, SiteKeyPolicy::completeChain());
  // Type 5 is mixed -> rejected; type 6 qualifies.
  EXPECT_EQ(ByType.Database.size(), 1u);
  // Chains separate the short 24-byte site from the long one.
  EXPECT_GT(ByChain.Report.PredictedShortBytes,
            ByType.Report.PredictedShortBytes);
}

TEST(LifetimeClassifierTest, SitesLandInSmallestFittingBand) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace T;
  uint32_t Fast = T.internChain(CallChain{1});
  uint32_t Medium = T.internChain(CallChain{2});
  uint32_t Slow = T.internChain(CallChain{3});
  for (int I = 0; I < 20; ++I)
    T.append({1000, 16, Fast, 0});
  for (int I = 0; I < 20; ++I)
    T.append({20000, 16, Medium, 0});
  for (int I = 0; I < 20; ++I)
    T.append({500000, 16, Slow, 0});
  for (int I = 0; I < 200; ++I)
    T.append({NeverFreed, 4096, T.internChain(CallChain{4}), 0});
  Profile P = profileTrace(T, Policy);

  ClassDatabase DB =
      trainClassDatabase(P, Policy, {4 * 1024, 32 * 1024});
  EXPECT_EQ(DB.classify(siteKey(Policy, CallChain{1}, 16)), 0);
  EXPECT_EQ(DB.classify(siteKey(Policy, CallChain{2}, 16)), 1);
  EXPECT_EQ(DB.classify(siteKey(Policy, CallChain{3}, 16)),
            UnclassifiedLifetime);
  EXPECT_EQ(DB.sitesInClass(0), 1u);
  EXPECT_EQ(DB.sitesInClass(1), 1u);
}

TEST(LifetimeClassifierTest, UnsortedThresholdsAreSorted) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace T;
  uint32_t C = T.internChain(CallChain{1});
  for (int I = 0; I < 10; ++I)
    T.append({1000, 16, C, 0});
  for (int I = 0; I < 50; ++I)
    T.append({NeverFreed, 4096, T.internChain(CallChain{2}), 0});
  Profile P = profileTrace(T, Policy);
  ClassDatabase DB =
      trainClassDatabase(P, Policy, {32 * 1024, 4 * 1024});
  // Band 0 must be the 4 KB band after sorting.
  EXPECT_EQ(DB.thresholds().front(), 4u * 1024);
  EXPECT_EQ(DB.classify(siteKey(Policy, CallChain{1}, 16)), 0);
}

TEST(GeneratedAllocatorTest, HeaderContainsSortedKeysAndPredicate) {
  SiteKeyPolicy Policy = SiteKeyPolicy::lastN(4);
  SiteDatabase DB(Policy, 32768);
  DB.insert(900);
  DB.insert(100);
  DB.insert(500);
  std::stringstream OS;
  emitSiteDatabaseHeader(DB, OS);
  std::string Header = OS.str();
  EXPECT_NE(Header.find("inline constexpr uint64_t SiteKeyCount = 3"),
            std::string::npos);
  EXPECT_NE(Header.find("isPredictedShortLived"), std::string::npos);
  EXPECT_NE(Header.find("ShortLivedThreshold = 32768"), std::string::npos);
  // Keys are emitted sorted.
  size_t P100 = Header.find("100ull");
  size_t P500 = Header.find("500ull");
  size_t P900 = Header.find("900ull");
  ASSERT_NE(P100, std::string::npos);
  ASSERT_NE(P500, std::string::npos);
  ASSERT_NE(P900, std::string::npos);
  EXPECT_LT(P100, P500);
  EXPECT_LT(P500, P900);
  // The guard and namespace are configurable.
  EmitHeaderOptions Options;
  Options.Namespace = "my_profile";
  Options.Guard = "MY_GUARD_H";
  std::stringstream OS2;
  emitSiteDatabaseHeader(DB, OS2, Options);
  EXPECT_NE(OS2.str().find("namespace my_profile"), std::string::npos);
  EXPECT_NE(OS2.str().find("#ifndef MY_GUARD_H"), std::string::npos);
}

TEST(GeneratedAllocatorTest, EmptyDatabaseStillCompilesShape) {
  SiteDatabase DB(SiteKeyPolicy::completeChain(), 32768);
  std::stringstream OS;
  emitSiteDatabaseHeader(DB, OS);
  EXPECT_NE(OS.str().find("SiteKeyCount = 0"), std::string::npos);
  EXPECT_NE(OS.str().find("Placeholder"), std::string::npos);
}

TEST(ThresholdSelectorTest, EmptyProfileSelectsNothing) {
  Profile Empty;
  ThresholdSelection S = selectThreshold(Empty);
  for (const ThresholdCandidate &C : S.Candidates) {
    EXPECT_EQ(C.QualifyingSites, 0u);
    EXPECT_DOUBLE_EQ(C.CoveragePercent, 0.0);
  }
}

TEST(ProfilerTest, HistogramSummarizesSiteLifetimes) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace T;
  uint32_t C = T.internChain(CallChain{1});
  for (int I = 1; I <= 100; ++I)
    T.append({static_cast<uint64_t>(I * 10), 16, C, 0});
  for (int I = 0; I < 50; ++I)
    T.append({NeverFreed, 4096, T.internChain(CallChain{2}), 0});
  Profile P = profileTrace(T, Policy);
  const SiteStats &Stats =
      P.Sites.at(siteKey(Policy, CallChain{1}, 16));
  EXPECT_EQ(Stats.Lifetimes.count(), 100u);
  EXPECT_DOUBLE_EQ(Stats.Lifetimes.min(), 10.0);
  EXPECT_DOUBLE_EQ(Stats.Lifetimes.max(), 1000.0);
  EXPECT_NEAR(Stats.Lifetimes.quantile(0.5), 500.0, 60.0);
}

TEST(ProfilerTest, RefsAccumulatePerSite) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace T;
  uint32_t C = T.internChain(CallChain{1});
  T.append({10, 16, C, 7});
  T.append({10, 16, C, 3});
  Profile P = profileTrace(T, Policy);
  EXPECT_EQ(P.Sites.at(siteKey(Policy, CallChain{1}, 16)).Refs, 10u);
  EXPECT_EQ(P.TotalHeapRefs, 10u);
}
