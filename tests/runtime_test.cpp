//===- tests/runtime_test.cpp - In-process runtime tests -------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Instrument.h"
#include "runtime/PredictingHeap.h"
#include "runtime/RuntimeProfiler.h"
#include "runtime/StlAllocator.h"

#include "gtest/gtest.h"

#include <cstring>
#include <thread>
#include <vector>

using namespace lifepred;

namespace {

/// An instrumented "application": a scratch allocator wrapping a profiler
/// or heap behind shadow-stack frames.
struct ScratchApp {
  RuntimeProfiler *Profiler = nullptr;
  PredictingHeap *Heap = nullptr;
  std::vector<void *> Temporaries;

  void *alloc(uint32_t Size) {
    if (Heap)
      return Heap->allocate(Size);
    // Profiling mode: hand out fake distinct pointers.
    auto *P = reinterpret_cast<void *>(NextFake += 64);
    Profiler->recordAlloc(P, Size);
    return P;
  }
  void release(void *P) {
    if (Heap)
      Heap->deallocate(P);
    else
      Profiler->recordFree(P);
  }

  // Short-lived temporaries: allocated and freed within the call.
  void makeTemporary() {
    LIFEPRED_NAMED_FUNCTION("makeTemporary");
    void *P = alloc(24);
    release(P);
  }

  // Long-lived nodes: retained until teardown.
  void makeNode() {
    LIFEPRED_NAMED_FUNCTION("makeNode");
    Temporaries.push_back(alloc(24));
  }

  void run(int Iterations) {
    LIFEPRED_NAMED_FUNCTION("run");
    for (int I = 0; I < Iterations; ++I) {
      makeTemporary();
      if (I % 50 == 0)
        makeNode();
    }
  }

  uintptr_t NextFake = 0x1000;
};

} // namespace

TEST(RuntimeProfilerTest, ClockAdvancesByBytes) {
  RuntimeProfiler P;
  P.recordAlloc(reinterpret_cast<void *>(0x10), 100);
  P.recordAlloc(reinterpret_cast<void *>(0x20), 50);
  EXPECT_EQ(P.clock(), 150u);
}

TEST(RuntimeProfilerTest, LifetimeMeasuredOnByteClock) {
  ShadowStack::current().clear();
  RuntimeProfiler P(SiteKeyPolicy::lastN(4));
  {
    ScopedFrame F(1);
    P.recordAlloc(reinterpret_cast<void *>(0x10), 10);
  }
  P.recordAlloc(reinterpret_cast<void *>(0x20), 500);
  P.recordFree(reinterpret_cast<void *>(0x10)); // Lived 500 bytes.
  Profile Prof = P.takeProfile();
  SiteKey Key = siteKey(SiteKeyPolicy::lastN(4), CallChain{1}, 10);
  ASSERT_TRUE(Prof.Sites.count(Key));
  EXPECT_EQ(Prof.Sites.at(Key).MaxLifetime, 500u);
}

TEST(RuntimeProfilerTest, UnknownFreeIgnored) {
  RuntimeProfiler P;
  P.recordFree(reinterpret_cast<void *>(0xdead)); // Must not crash.
  EXPECT_EQ(P.clock(), 0u);
}

TEST(RuntimeProfilerTest, LiveObjectsDieAtProfileEnd) {
  ShadowStack::current().clear();
  RuntimeProfiler P(SiteKeyPolicy::lastN(4));
  {
    ScopedFrame F(2);
    P.recordAlloc(reinterpret_cast<void *>(0x10), 10);
  }
  P.recordAlloc(reinterpret_cast<void *>(0x20), 100000);
  Profile Prof = P.takeProfile(); // 0x10 still live: lifetime 100000.
  SiteKey Key = siteKey(SiteKeyPolicy::lastN(4), CallChain{2}, 10);
  ASSERT_TRUE(Prof.Sites.count(Key));
  EXPECT_EQ(Prof.Sites.at(Key).MaxLifetime, 100000u);
}

TEST(RuntimeEndToEndTest, ProfileThenPredictSegregates) {
  ShadowStack::current().clear();

  // Training run: profile the instrumented app.
  RuntimeProfiler Profiler(SiteKeyPolicy::lastN(4));
  ScratchApp TrainApp;
  TrainApp.Profiler = &Profiler;
  TrainApp.run(2000);
  // Retained nodes die at exit (long-lived); temporaries are short-lived.
  SiteDatabase DB = Profiler.train();
  EXPECT_GE(DB.size(), 1u);

  // Optimized run: the same app on a predicting heap.
  PredictingHeap Heap(DB);
  ScratchApp TestApp;
  TestApp.Heap = &Heap;
  TestApp.run(2000);
  for (void *P : TestApp.Temporaries)
    Heap.deallocate(P);

  // The short-lived temporaries went to arenas, the retained nodes to the
  // general heap.
  EXPECT_GT(Heap.stats().ArenaAllocs, 1500u);
  EXPECT_GE(Heap.stats().GeneralAllocs, 30u);
}

TEST(PredictingHeapTest, ArenaPointersAreWritable) {
  SiteKeyPolicy Policy = SiteKeyPolicy::lastN(4);
  SiteDatabase DB(Policy, 32768);
  DB.insert(siteKey(Policy, CallChain{7}, 64));

  ShadowStack::current().clear();
  PredictingHeap Heap(DB);
  ScopedFrame F(7);
  void *P = Heap.allocate(64);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(Heap.isArenaPointer(P));
  std::memset(P, 0xab, 64); // Real memory: must be writable.
  Heap.deallocate(P);
}

TEST(PredictingHeapTest, UnpredictedUsesOperatorNew) {
  SiteDatabase DB(SiteKeyPolicy::lastN(4), 32768); // Empty database.
  ShadowStack::current().clear();
  PredictingHeap Heap(DB);
  void *P = Heap.allocate(128);
  ASSERT_NE(P, nullptr);
  EXPECT_FALSE(Heap.isArenaPointer(P));
  std::memset(P, 0xcd, 128);
  Heap.deallocate(P);
  EXPECT_EQ(Heap.stats().GeneralAllocs, 1u);
}

TEST(PredictingHeapTest, ArenaRecyclesWhenEmpty) {
  SiteKeyPolicy Policy = SiteKeyPolicy::lastN(4);
  SiteDatabase DB(Policy, 32768);
  DB.insert(siteKey(Policy, CallChain{7}, 64));

  ShadowStack::current().clear();
  PredictingHeap::Config Cfg;
  Cfg.AreaBytes = 4096;
  Cfg.ArenaCount = 2;
  PredictingHeap Heap(DB, Cfg);
  ScopedFrame F(7);
  // Churn far more than the area holds: works because everything is freed.
  for (int I = 0; I < 1000; ++I) {
    void *P = Heap.allocate(64);
    ASSERT_TRUE(Heap.isArenaPointer(P));
    Heap.deallocate(P);
  }
  EXPECT_EQ(Heap.stats().ArenaAllocs, 1000u);
  EXPECT_EQ(Heap.stats().Fallbacks, 0u);
  EXPECT_GT(Heap.stats().Resets, 10u);
}

TEST(PredictingHeapTest, PinnedArenasFallBackToGeneral) {
  SiteKeyPolicy Policy = SiteKeyPolicy::lastN(4);
  SiteDatabase DB(Policy, 32768);
  DB.insert(siteKey(Policy, CallChain{7}, 64));

  ShadowStack::current().clear();
  PredictingHeap::Config Cfg;
  Cfg.AreaBytes = 2048;
  Cfg.ArenaCount = 2;
  PredictingHeap Heap(DB, Cfg);
  ScopedFrame F(7);
  // Keep everything alive: the arenas pin and the heap must fall back.
  std::vector<void *> Live;
  for (int I = 0; I < 100; ++I)
    Live.push_back(Heap.allocate(64));
  EXPECT_GT(Heap.stats().Fallbacks, 0u);
  EXPECT_GT(Heap.stats().GeneralAllocs, 0u);
  for (void *P : Live)
    Heap.deallocate(P);
}

TEST(PredictingHeapTest, OversizePredictedObjectGoesGeneral) {
  SiteKeyPolicy Policy = SiteKeyPolicy::lastN(4);
  SiteDatabase DB(Policy, 32768);
  DB.insert(siteKey(Policy, CallChain{7}, 6144));
  ShadowStack::current().clear();
  PredictingHeap Heap(DB); // 4 KB arenas: 6 KB cannot fit.
  ScopedFrame F(7);
  void *P = Heap.allocate(6144);
  EXPECT_FALSE(Heap.isArenaPointer(P));
  Heap.deallocate(P);
}

TEST(PredictingHeapTest, NullAndZeroSizeAreSafe) {
  SiteDatabase DB(SiteKeyPolicy::lastN(4), 32768);
  PredictingHeap Heap(DB);
  Heap.deallocate(nullptr); // No-op.
  void *P = Heap.allocate(0);
  EXPECT_NE(P, nullptr);
  Heap.deallocate(P);
}

TEST(InstrumentTest, RuntimeFunctionIdsStable) {
  FunctionId A = runtimeFunctionId("fn_a");
  FunctionId B = runtimeFunctionId("fn_b");
  EXPECT_NE(A, B);
  EXPECT_EQ(runtimeFunctionId("fn_a"), A);
}

TEST(StlAllocatorTest, VectorUsesPredictingHeap) {
  SiteKeyPolicy Policy = SiteKeyPolicy::lastN(4);
  SiteDatabase DB(Policy, 32768);
  // Predict the small growth sizes short-lived.
  for (uint32_t Bytes = 4; Bytes <= 1024; Bytes += 4)
    DB.insert(siteKey(Policy, CallChain{42}, Bytes));

  ShadowStack::current().clear();
  PredictingHeap Heap(DB);
  uint64_t ArenaBefore = Heap.stats().ArenaAllocs;
  {
    ScopedFrame Frame(42);
    std::vector<int, StlAllocator<int>> V{StlAllocator<int>(Heap)};
    for (int I = 0; I < 100; ++I)
      V.push_back(I);
    for (int I = 0; I < 100; ++I)
      EXPECT_EQ(V[static_cast<size_t>(I)], I);
  }
  EXPECT_GT(Heap.stats().ArenaAllocs, ArenaBefore);
}

TEST(StlAllocatorTest, RebindSharesHeap) {
  SiteDatabase DB(SiteKeyPolicy::lastN(4), 32768);
  PredictingHeap Heap(DB);
  StlAllocator<int> IntAlloc(Heap);
  StlAllocator<double> DoubleAlloc(IntAlloc);
  EXPECT_EQ(DoubleAlloc.heap(), IntAlloc.heap());
  StlAllocator<int> Back(DoubleAlloc);
  EXPECT_TRUE(Back == IntAlloc);
}

TEST(PredictingHeapTest, ThreadSafeModeSurvivesConcurrentChurn) {
  SiteKeyPolicy Policy = SiteKeyPolicy::lastN(4);
  SiteDatabase DB(Policy, 32768);
  DB.insert(siteKey(Policy, CallChain{11}, 64));
  PredictingHeap::Config Cfg;
  Cfg.ThreadSafe = true;
  PredictingHeap Heap(DB, Cfg);

  auto Worker = [&Heap] {
    ShadowStack::current().clear();
    ScopedFrame Frame(11);
    for (int I = 0; I < 20000; ++I) {
      void *P = Heap.allocate(64);
      *static_cast<volatile char *>(P) = 1;
      Heap.deallocate(P);
    }
  };
  std::thread A(Worker), B(Worker), C(Worker);
  A.join();
  B.join();
  C.join();
  EXPECT_EQ(Heap.stats().ArenaAllocs + Heap.stats().GeneralAllocs, 60000u);
}
