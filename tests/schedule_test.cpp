//===- tests/schedule_test.cpp - On-disk schedule replay -------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streamed-replay equivalence suite.  Pins the billion-event tier's
/// three load-bearing claims:
///
///  * streamed replay of a .sched file exports a registry byte-identical
///    to the in-memory simulators on the same trace, for every paper
///    workload, and the sharded replay's merged registry is identical at
///    --jobs 1, 2, and 8;
///  * chunk live-in tables describe the heap exactly as it stands before
///    the chunk's first event, even when objects straddle chunk
///    boundaries (tiny EventsPerChunk forces straddling);
///  * the batched bitmap fast path stays in lockstep with the BSD
///    free-list allocator on every shadow-oracle-validated corpus trace;
///  * corrupt or truncated .sched files are rejected at open().
///
//===----------------------------------------------------------------------===//

#include "sim/SimTelemetry.h"
#include "sim/StreamReplay.h"
#include "sim/TraceSimulator.h"
#include "support/ThreadPool.h"
#include "telemetry/StatsRegistry.h"
#include "trace/CompiledTrace.h"
#include "trace/ScheduleFile.h"
#include "trace/TraceBinaryIO.h"
#include "verify/ShadowSim.h"
#include "verify/TraceFuzzer.h"
#include "workloads/Programs.h"
#include "workloads/WorkloadRunner.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace lifepred;

#ifndef LIFEPRED_CORPUS_DIR
#error "LIFEPRED_CORPUS_DIR must be defined by the build"
#endif

namespace {

/// Writes \p Trace to a fresh .sched file under the test temp dir and
/// opens it.  \p EventsPerChunk is deliberately small in most tests so
/// every trace spans many chunks.
std::optional<ScheduleFile> roundTrip(const AllocationTrace &Trace,
                                      const std::string &Name,
                                      uint64_t EventsPerChunk,
                                      std::string &Path) {
  Path = testing::TempDir() + Name;
  ScheduleFileWriter::Config Config;
  Config.EventsPerChunk = EventsPerChunk;
  ScheduleFileWriter Writer(Path, Config);
  Writer.append(Trace);
  if (!Writer.finish()) {
    ADD_FAILURE() << "writer: " << Writer.error();
    return std::nullopt;
  }
  std::string Error;
  std::optional<ScheduleFile> File = ScheduleFile::open(Path, Error);
  if (!File)
    ADD_FAILURE() << "open: " << Error;
  return File;
}

std::string registryJson(const StatsRegistry &Registry) {
  std::string Out;
  Registry.writeJson(Out, "");
  return Out;
}

class PaperWorkloadScheduleTest : public testing::TestWithParam<ProgramModel> {
protected:
  AllocationTrace trace() const {
    RunOptions Options;
    Options.Scale = 0.05;
    FunctionRegistry Functions;
    return runWorkload(GetParam(), Options, Functions);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Streamed vs in-memory equivalence on the paper workloads
//===----------------------------------------------------------------------===//

TEST_P(PaperWorkloadScheduleTest, StreamedRegistryMatchesInMemory) {
  AllocationTrace Trace = trace();
  std::string Path;
  std::optional<ScheduleFile> File =
      roundTrip(Trace, GetParam().Name + std::string(".sched"), 4096, Path);
  ASSERT_TRUE(File.has_value());
  EXPECT_GT(File->chunkCount(), 1u)
      << "trace too small to exercise chunked streaming";

  // In-memory replays (the PR 4 paths) into one registry...
  StatsRegistry InMemory;
  SimTelemetry MemTel;
  MemTel.Registry = &InMemory;
  BaselineSimResult MemFf = simulateFirstFit(Trace, {}, {}, &MemTel);
  BaselineSimResult MemBsd = simulateBsd(Trace, {}, {}, &MemTel);

  // ...streamed replays of the same events into another.
  StatsRegistry Streamed;
  SimTelemetry StreamTel;
  StreamTel.Registry = &Streamed;
  StreamSimResult StreamFf = streamSimulateFirstFit(*File, {}, {}, &StreamTel);
  StreamSimResult StreamBsd = streamSimulateBsd(*File, {}, {}, &StreamTel);

  EXPECT_EQ(registryJson(InMemory), registryJson(Streamed));
  EXPECT_EQ(MemFf.MaxHeapBytes, StreamFf.MaxHeapBytes);
  EXPECT_EQ(MemFf.MaxLiveBytes, StreamFf.MaxLiveBytes);
  EXPECT_EQ(MemBsd.MaxHeapBytes, StreamBsd.MaxHeapBytes);
  EXPECT_EQ(MemBsd.MaxLiveBytes, StreamBsd.MaxLiveBytes);
  EXPECT_EQ(MemBsd.Bsd.Allocs, StreamBsd.Bsd.Allocs);
  EXPECT_EQ(MemBsd.Bsd.PageRefills, StreamBsd.Bsd.PageRefills);

  // The batched bitmap fast path exports the same "bsd." registry values.
  StatsRegistry Batched;
  SimTelemetry BatchTel;
  BatchTel.Registry = &Batched;
  StreamSimResult Fast = streamSimulateBsdBatched(*File, {}, {}, 512, &BatchTel);
  EXPECT_EQ(MemBsd.Bsd.Allocs, Fast.Bsd.Allocs);
  EXPECT_EQ(MemBsd.Bsd.Frees, Fast.Bsd.Frees);
  EXPECT_EQ(MemBsd.Bsd.PageRefills, Fast.Bsd.PageRefills);
  EXPECT_EQ(MemBsd.Bsd.BucketBits, Fast.Bsd.BucketBits);
  EXPECT_EQ(MemBsd.MaxHeapBytes, Fast.MaxHeapBytes);
  EXPECT_EQ(MemBsd.MaxLiveBytes, Fast.MaxLiveBytes);

  std::remove(Path.c_str());
}

TEST_P(PaperWorkloadScheduleTest, ShardedRegistryIdenticalAcrossJobs) {
  AllocationTrace Trace = trace();
  std::string Path;
  std::optional<ScheduleFile> File =
      roundTrip(Trace, GetParam().Name + std::string("_shard.sched"), 2048,
                Path);
  ASSERT_TRUE(File.has_value());

  std::string Reference;
  for (unsigned Jobs : {1u, 2u, 8u}) {
    ThreadPool Pool(Jobs);
    StatsRegistry Registry;
    ShardedBsdResult Result =
        streamReplayBsdSharded(*File, Pool, {}, &Registry);
    EXPECT_EQ(Result.Events, File->eventCount());
    std::string Json = registryJson(Registry);
    if (Reference.empty())
      Reference = Json;
    else
      EXPECT_EQ(Reference, Json) << "sharded output diverged at jobs="
                                 << Jobs;
  }
  std::remove(Path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    PaperPrograms, PaperWorkloadScheduleTest,
    testing::ValuesIn(allPrograms()),
    [](const testing::TestParamInfo<ProgramModel> &Info) {
      std::string Name = Info.param.Name;
      std::replace_if(
          Name.begin(), Name.end(),
          [](char C) { return !std::isalnum(static_cast<unsigned char>(C)); },
          '_');
      return Name;
    });

//===----------------------------------------------------------------------===//
// Chunk boundaries
//===----------------------------------------------------------------------===//

// With EventsPerChunk far below the trace's live-object count, most
// objects die in a later chunk than they were born in.  Every chunk's
// live-in table must then describe the heap exactly as it stands before
// the chunk's first event — the state a shard warm-up reconstructs.
TEST(ScheduleChunkTest, LiveInTablesDescribeStateBeforeChunk) {
  AllocationTrace Trace = generateFuzzTrace(FuzzProfile::Uniform, 7, 500);
  std::string Path;
  std::optional<ScheduleFile> File =
      roundTrip(Trace, "straddle.sched", 64, Path);
  ASSERT_TRUE(File.has_value());
  ASSERT_GT(File->chunkCount(), 4u);

  // Replay the schedule sequentially, checking each chunk's live-in table
  // against the independently tracked live set at its entry.
  std::vector<uint64_t> LiveSize(File->slotCount(), 0); // 0 = dead.
  uint64_t LiveBytes = 0;
  for (uint64_t Chunk = 0; Chunk < File->chunkCount(); ++Chunk) {
    const ScheduleChunkInfo &Info = File->chunk(Chunk);
    const ScheduleLiveIn *LiveIn = File->chunkLiveIn(Chunk);
    uint64_t ExpectLive = 0;
    for (uint64_t Size : LiveSize)
      ExpectLive += Size != 0;
    ASSERT_EQ(Info.LiveInCount, ExpectLive) << "chunk " << Chunk;
    ASSERT_EQ(Info.LiveInBytes, LiveBytes) << "chunk " << Chunk;
    for (uint64_t I = 0; I < Info.LiveInCount; ++I) {
      ASSERT_LT(LiveIn[I].Slot, LiveSize.size());
      EXPECT_EQ(LiveIn[I].Size, LiveSize[LiveIn[I].Slot])
          << "chunk " << Chunk << " live-in entry " << I;
    }
    const ScheduleEvent *Events = File->chunkEvents(Chunk);
    for (uint64_t I = 0; I < Info.EventCount; ++I) {
      const uint32_t Slot = Events[I].TaggedSlot & ~EventSchedule::FreeBit;
      if (Events[I].TaggedSlot & EventSchedule::FreeBit) {
        EXPECT_NE(LiveSize[Slot], 0u) << "free of a dead slot";
        LiveBytes -= LiveSize[Slot];
        LiveSize[Slot] = 0;
      } else {
        EXPECT_EQ(LiveSize[Slot], 0u) << "alloc into a live slot";
        LiveSize[Slot] = Events[I].Size;
        LiveBytes += Events[I].Size;
      }
    }
  }
  // Whatever is still live at end-of-schedule must be exactly the trace's
  // never-freed objects.
  uint64_t ImmortalBytes = 0;
  for (const AllocRecord &Record : Trace.records())
    if (Record.Lifetime == NeverFreed)
      ImmortalBytes += Record.Size;
  EXPECT_EQ(LiveBytes, ImmortalBytes);

  // Straddling must not disturb equivalence: the streamed sequential and
  // batched replays still match the in-memory simulation bit for bit.
  BaselineSimResult Mem = simulateBsd(Trace);
  StreamSimResult Seq = streamSimulateBsd(*File);
  StreamSimResult Fast = streamSimulateBsdBatched(*File, {}, {}, 32);
  EXPECT_EQ(Mem.Bsd.Allocs, Seq.Bsd.Allocs);
  EXPECT_EQ(Mem.Bsd.PageRefills, Seq.Bsd.PageRefills);
  EXPECT_EQ(Mem.MaxHeapBytes, Seq.MaxHeapBytes);
  EXPECT_EQ(Mem.Bsd.Allocs, Fast.Bsd.Allocs);
  EXPECT_EQ(Mem.Bsd.PageRefills, Fast.Bsd.PageRefills);
  EXPECT_EQ(Mem.Bsd.BucketBits, Fast.Bsd.BucketBits);
  EXPECT_EQ(Mem.MaxHeapBytes, Fast.MaxHeapBytes);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Bitmap fast path vs the shadow-oracle-validated allocator
//===----------------------------------------------------------------------===//

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  std::error_code EC;
  for (const auto &Entry :
       std::filesystem::directory_iterator(LIFEPRED_CORPUS_DIR, EC))
    if (Entry.path().extension() == ".lptrace")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

class BitmapLockstepTest : public testing::TestWithParam<std::string> {};

} // namespace

TEST_P(BitmapLockstepTest, MatchesShadowCheckedBsdOnCorpusTrace) {
  std::ifstream IS(GetParam(), std::ios::binary);
  ASSERT_TRUE(IS) << "cannot open " << GetParam();
  std::optional<AllocationTrace> Trace = readTraceBinary(IS);
  ASSERT_TRUE(Trace.has_value());

  // The oracle vouches for the BSD reference on this trace...
  ShadowReport Report =
      shadowCheckBsd(*Trace, BsdAllocator::Config(), ReplayPath::Compiled);
  ASSERT_TRUE(Report.clean()) << Report.summary();

  // ...and the bitmap fast path must stay in lockstep with that reference.
  std::string Path;
  std::string Name =
      std::filesystem::path(GetParam()).stem().string() + ".sched";
  std::optional<ScheduleFile> File = roundTrip(*Trace, Name, 256, Path);
  ASSERT_TRUE(File.has_value());
  BaselineSimResult Mem = simulateBsd(*Trace);
  for (size_t BatchEvents : {7u, 512u}) { // Odd size exercises tail batches.
    StreamSimResult Fast = streamSimulateBsdBatched(*File, {}, {}, BatchEvents);
    EXPECT_EQ(Mem.Bsd.Allocs, Fast.Bsd.Allocs) << "batch=" << BatchEvents;
    EXPECT_EQ(Mem.Bsd.Frees, Fast.Bsd.Frees) << "batch=" << BatchEvents;
    EXPECT_EQ(Mem.Bsd.PageRefills, Fast.Bsd.PageRefills)
        << "batch=" << BatchEvents;
    EXPECT_EQ(Mem.Bsd.BucketBits, Fast.Bsd.BucketBits)
        << "batch=" << BatchEvents;
    EXPECT_EQ(Mem.MaxHeapBytes, Fast.MaxHeapBytes) << "batch=" << BatchEvents;
    EXPECT_EQ(Mem.MaxLiveBytes, Fast.MaxLiveBytes) << "batch=" << BatchEvents;
  }
  std::remove(Path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, BitmapLockstepTest, testing::ValuesIn(corpusFiles()),
    [](const testing::TestParamInfo<std::string> &Info) {
      std::string Name = std::filesystem::path(Info.param).stem().string();
      std::replace_if(
          Name.begin(), Name.end(),
          [](char C) { return !std::isalnum(static_cast<unsigned char>(C)); },
          '_');
      return Name;
    });

//===----------------------------------------------------------------------===//
// Corrupt and truncated files
//===----------------------------------------------------------------------===//

namespace {

/// Writes a small valid schedule and returns its bytes.
std::string validScheduleBytes() {
  AllocationTrace Trace = generateFuzzTrace(FuzzProfile::Uniform, 11, 64);
  std::string Path = testing::TempDir() + "valid.sched";
  ScheduleFileWriter::Config Config;
  Config.EventsPerChunk = 32;
  ScheduleFileWriter Writer(Path, Config);
  Writer.append(Trace);
  EXPECT_TRUE(Writer.finish()) << Writer.error();
  std::ifstream IS(Path, std::ios::binary);
  std::string Bytes((std::istreambuf_iterator<char>(IS)),
                    std::istreambuf_iterator<char>());
  std::remove(Path.c_str());
  return Bytes;
}

/// Expects open() to reject \p Bytes with a non-empty diagnostic.
void expectRejected(const std::string &Bytes, const std::string &Label) {
  std::string Path = testing::TempDir() + Label + ".sched";
  {
    std::ofstream OS(Path, std::ios::binary);
    OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }
  std::string Error;
  std::optional<ScheduleFile> File = ScheduleFile::open(Path, Error);
  EXPECT_FALSE(File.has_value()) << Label << " was accepted";
  EXPECT_FALSE(Error.empty()) << Label << " produced no diagnostic";
  std::remove(Path.c_str());
}

} // namespace

TEST(ScheduleCorruptionTest, RejectsDamagedFiles) {
  const std::string Valid = validScheduleBytes();
  ASSERT_GT(Valid.size(), ScheduleFile::HeaderBytes);

  // Sanity: the pristine bytes open fine.
  {
    std::string Path = testing::TempDir() + "pristine.sched";
    std::ofstream(Path, std::ios::binary).write(Valid.data(),
                                                (std::streamsize)Valid.size());
    std::string Error;
    EXPECT_TRUE(ScheduleFile::open(Path, Error).has_value()) << Error;
    std::remove(Path.c_str());
  }

  expectRejected("", "empty");
  expectRejected(Valid.substr(0, 50), "short_header");
  expectRejected(Valid.substr(0, ScheduleFile::HeaderBytes + 3),
                 "truncated_body");

  std::string BadMagic = Valid;
  BadMagic[0] = 'X';
  expectRejected(BadMagic, "bad_magic");

  // An interrupted write leaves the backpatched header all-zero.
  std::string ZeroHeader = Valid;
  std::fill_n(ZeroHeader.begin(), ScheduleFile::HeaderBytes, '\0');
  expectRejected(ZeroHeader, "zero_header");

  std::string BadVersion = Valid;
  BadVersion[8] = 0x7f; // Version field follows the 8-byte magic.
  expectRejected(BadVersion, "bad_version");

  // Inflate EventCount (offset 16) so the events section overruns the file.
  std::string BadCount = Valid;
  BadCount[16 + 6] = 0x7f; // A petabyte-scale event count.
  expectRejected(BadCount, "oversized_event_count");

  // A missing file is an error, not a crash.
  std::string Error;
  EXPECT_FALSE(
      ScheduleFile::open(testing::TempDir() + "nonexistent.sched", Error)
          .has_value());
  EXPECT_FALSE(Error.empty());
}
