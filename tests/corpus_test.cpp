//===- tests/corpus_test.cpp - Fuzz corpus replay --------------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays every checked-in corpus trace (tests/corpus/*.lptrace) through
/// the full shadow oracle as a named ctest case.  The corpus holds the
/// generator's seed traces plus any shrinker-minimized witnesses of past
/// violations; a regression that re-breaks a fixed invariant fails here
/// before the fuzzer ever runs.
///
//===----------------------------------------------------------------------===//

#include "trace/TraceBinaryIO.h"
#include "verify/ShadowSim.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

using namespace lifepred;

#ifndef LIFEPRED_CORPUS_DIR
#error "LIFEPRED_CORPUS_DIR must be defined by the build"
#endif

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  std::error_code EC;
  for (const auto &Entry :
       std::filesystem::directory_iterator(LIFEPRED_CORPUS_DIR, EC))
    if (Entry.path().extension() == ".lptrace")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

class CorpusReplayTest : public testing::TestWithParam<std::string> {};

} // namespace

TEST_P(CorpusReplayTest, ReplaysCleanUnderShadowOracle) {
  std::ifstream IS(GetParam(), std::ios::binary);
  ASSERT_TRUE(IS) << "cannot open " << GetParam();
  std::optional<AllocationTrace> Trace = readTraceBinary(IS);
  ASSERT_TRUE(Trace.has_value()) << GetParam() << " is not a binary trace";
  ShadowReport Report = shadowCheckAll(*Trace);
  EXPECT_TRUE(Report.clean())
      << GetParam() << ": " << Report.summary()
      << (Report.Violations.empty()
              ? ""
              : "; first: " + Report.Violations[0].Invariant + ": " +
                    Report.Violations[0].Detail);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorpusReplayTest, testing::ValuesIn(corpusFiles()),
    [](const testing::TestParamInfo<std::string> &Info) {
      std::string Name = std::filesystem::path(Info.param).stem().string();
      std::replace_if(
          Name.begin(), Name.end(),
          [](char C) { return !std::isalnum(static_cast<unsigned char>(C)); },
          '_');
      return Name;
    });

// The corpus directory must exist and hold at least the generator seeds;
// an empty ValuesIn would silently skip the suite above.
TEST(CorpusTest, CorpusIsNotEmpty) {
  EXPECT_GE(corpusFiles().size(), 9u) << "expected one seed trace per profile";
}
