//===- tests/workloads_test.cpp - Workload model tests ---------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceBinaryIO.h"
#include "verify/ShadowSim.h"
#include "workloads/LifetimeDistribution.h"
#include "workloads/ModelBuilder.h"
#include "workloads/PaperData.h"
#include "workloads/Programs.h"
#include "workloads/WorkloadRunner.h"

#include "gtest/gtest.h"

#include <cmath>
#include <map>
#include <set>
#include <sstream>

using namespace lifepred;

TEST(LifetimeDistributionTest, ConstantAlwaysSame) {
  auto D = LifetimeDistribution::constant(42);
  Rng R(1);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(D.sample(R), 42u);
  EXPECT_EQ(D.maxValue(), 42u);
  EXPECT_TRUE(D.alwaysBelow(43));
  EXPECT_FALSE(D.alwaysBelow(42));
}

TEST(LifetimeDistributionTest, UniformStaysInRange) {
  auto D = LifetimeDistribution::uniform(10, 20);
  Rng R(2);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = D.sample(R);
    EXPECT_GE(V, 10u);
    EXPECT_LE(V, 20u);
  }
}

TEST(LifetimeDistributionTest, LogUniformCoversDecades) {
  auto D = LifetimeDistribution::logUniform(10, 100000);
  Rng R(3);
  int Low = 0, High = 0;
  for (int I = 0; I < 10000; ++I) {
    uint64_t V = D.sample(R);
    EXPECT_GE(V, 10u);
    EXPECT_LE(V, 100000u);
    if (V < 1000)
      ++Low;
    if (V > 10000)
      ++High;
  }
  // Each decade equally likely: half the samples under 1000 (two of four
  // decades), a quarter above 10000.
  EXPECT_NEAR(Low / 10000.0, 0.5, 0.05);
  EXPECT_NEAR(High / 10000.0, 0.25, 0.05);
}

TEST(LifetimeDistributionTest, QuantileControlPointsAreRespected) {
  auto D = LifetimeDistribution::fromQuantiles(
      {{0, 10}, {0.5, 100}, {1.0, 1000}});
  Rng R(4);
  int Below100 = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    uint64_t V = D.sample(R);
    EXPECT_GE(V, 10u);
    EXPECT_LE(V, 1000u);
    if (V <= 100)
      ++Below100;
  }
  EXPECT_NEAR(Below100 / double(N), 0.5, 0.02);
}

TEST(LifetimeDistributionTest, PermanentSamplesNeverFreed) {
  auto D = LifetimeDistribution::permanent();
  Rng R(5);
  EXPECT_EQ(D.sample(R), NeverFreed);
  EXPECT_EQ(D.maxValue(), NeverFreed);
}

TEST(LifetimeDistributionTest, MixtureWeightsComponents) {
  auto D = LifetimeDistribution::mixture(
      {{0.8, LifetimeDistribution::constant(1)},
       {0.2, LifetimeDistribution::constant(1000)}});
  Rng R(6);
  int Longs = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    if (D.sample(R) == 1000)
      ++Longs;
  EXPECT_NEAR(Longs / double(N), 0.2, 0.02);
  EXPECT_EQ(D.maxValue(), 1000u);
}

TEST(LifetimeDistributionTest, MixtureIgnoresZeroWeightInMax) {
  auto D = LifetimeDistribution::mixture(
      {{1.0, LifetimeDistribution::constant(5)},
       {0.0, LifetimeDistribution::permanent()}});
  EXPECT_EQ(D.maxValue(), 5u);
}

TEST(ModelBuilderTest, GroupProducesCountSites) {
  ProgramModel Model;
  GroupSpec G;
  G.BaseName = "g";
  G.Count = 7;
  G.Prefix = {seg("main")};
  G.Sizes = {16, 32};
  G.ByteShare = 0.5;
  G.Lifetime = LifetimeDistribution::constant(10);
  addGroup(Model, G);
  EXPECT_EQ(Model.Sites.size(), 7u);
  // Sizes cycle.
  EXPECT_EQ(Model.Sites[0].Size, 16u);
  EXPECT_EQ(Model.Sites[1].Size, 32u);
  EXPECT_EQ(Model.Sites[2].Size, 16u);
}

TEST(ModelBuilderTest, ByteShareSplitsEvenlyWithoutZipf) {
  ProgramModel Model;
  GroupSpec G;
  G.BaseName = "g";
  G.Count = 4;
  G.Prefix = {seg("main")};
  G.Sizes = {16};
  G.ByteShare = 1.0;
  G.Lifetime = LifetimeDistribution::constant(10);
  addGroup(Model, G);
  for (const SiteSpec &S : Model.Sites)
    EXPECT_DOUBLE_EQ(S.Weight, 0.25 / 16.0);
}

TEST(ModelBuilderTest, TrainOnlyGetsTestOnlyTwin) {
  ProgramModel Model;
  GroupSpec G;
  G.BaseName = "g";
  G.Count = 10;
  G.Prefix = {seg("main")};
  G.Sizes = {16};
  G.ByteShare = 1.0;
  G.Lifetime = LifetimeDistribution::constant(10);
  G.TrainOnlyFraction = 0.5;
  G.MirrorWeightFactor = 2.0;
  addGroup(Model, G);
  unsigned TrainOnly = 0, TestOnly = 0;
  for (const SiteSpec &S : Model.Sites) {
    TrainOnly += S.TrainOnly;
    TestOnly += S.TestOnly;
  }
  EXPECT_EQ(TrainOnly, TestOnly);
  EXPECT_GE(TrainOnly, 1u);
  EXPECT_LE(TrainOnly, 9u);
}

TEST(WorkloadRunnerTest, DeterministicForSameSeed) {
  ProgramModel Model = gawkModel();
  FunctionRegistry RegA, RegB;
  RunOptions O;
  O.Scale = 0.002;
  AllocationTrace A = runWorkload(Model, O, RegA);
  AllocationTrace B = runWorkload(Model, O, RegB);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A.records()[I].Size, B.records()[I].Size);
    EXPECT_EQ(A.records()[I].Lifetime, B.records()[I].Lifetime);
    EXPECT_EQ(A.records()[I].ChainIndex, B.records()[I].ChainIndex);
  }
}

TEST(WorkloadRunnerTest, DifferentSeedsDiffer) {
  ProgramModel Model = gawkModel();
  FunctionRegistry Reg;
  RunOptions A;
  A.Scale = 0.002;
  A.Seed = 1;
  RunOptions B = A;
  B.Seed = 2;
  AllocationTrace TA = runWorkload(Model, A, Reg);
  AllocationTrace TB = runWorkload(Model, B, Reg);
  bool AnyDifferent = TA.size() != TB.size();
  for (size_t I = 0; !AnyDifferent && I < TA.size(); ++I)
    AnyDifferent = TA.records()[I].Lifetime != TB.records()[I].Lifetime;
  EXPECT_TRUE(AnyDifferent);
}

TEST(WorkloadRunnerTest, ScaleControlsObjectCount) {
  ProgramModel Model = perlModel();
  FunctionRegistry Reg;
  RunOptions O;
  O.Scale = 0.001;
  AllocationTrace T = runWorkload(Model, O, Reg);
  EXPECT_NEAR(static_cast<double>(T.size()),
              static_cast<double>(Model.BaseObjects) * 0.001, 2.0);
}

TEST(WorkloadRunnerTest, TrainOnlySitesAbsentFromTestRun) {
  ProgramModel Model;
  Model.BaseObjects = 5000;
  GroupSpec G;
  G.BaseName = "g";
  G.Count = 10;
  G.Prefix = {seg("main")};
  G.Sizes = {16};
  G.ByteShare = 1.0;
  G.Lifetime = LifetimeDistribution::constant(10);
  G.TrainOnlyFraction = 0.5;
  addGroup(Model, G);

  FunctionRegistry Reg;
  RunOptions O;
  O.Kind = RunKind::Train;
  AllocationTrace Train = runWorkload(Model, O, Reg);
  O.Kind = RunKind::Test;
  AllocationTrace Test = runWorkload(Model, O, Reg);

  auto ChainSet = [](const AllocationTrace &T) {
    std::set<uint64_t> S;
    for (size_t I = 0; I < T.chainCount(); ++I)
      S.insert(T.chain(static_cast<uint32_t>(I)).hash());
    return S;
  };
  std::set<uint64_t> TrainChains = ChainSet(Train);
  std::set<uint64_t> TestChains = ChainSet(Test);
  // Some chains in each run are exclusive to it (train-only sites and
  // their test-only twins).
  bool TrainExclusive = false, TestExclusive = false;
  for (uint64_t H : TrainChains)
    TrainExclusive |= !TestChains.count(H);
  for (uint64_t H : TestChains)
    TestExclusive |= !TrainChains.count(H);
  EXPECT_TRUE(TrainExclusive);
  EXPECT_TRUE(TestExclusive);
}

TEST(WorkloadRunnerTest, RecursiveSegmentsVaryRawChains) {
  ProgramModel Model;
  Model.BaseObjects = 2000;
  SiteSpec S;
  S.Label = "rec";
  S.Path = {seg("main"), recSeg("eval", 1, 4), seg("leaf")};
  S.Size = 16;
  S.Weight = 1.0;
  S.Lifetime = LifetimeDistribution::constant(10);
  Model.Sites.push_back(S);

  FunctionRegistry Reg;
  RunOptions O;
  AllocationTrace T = runWorkload(Model, O, Reg);
  EXPECT_GE(T.chainCount(), 3u); // Depths 1..4 produce distinct raw chains.
  // All of them prune to the same chain.
  std::set<uint64_t> Pruned;
  for (size_t I = 0; I < T.chainCount(); ++I)
    Pruned.insert(T.chain(static_cast<uint32_t>(I)).pruned().hash());
  EXPECT_EQ(Pruned.size(), 1u);
}

TEST(WorkloadRunnerTest, BurstSitesPreserveShare) {
  ProgramModel Model;
  Model.BaseObjects = 40000;
  GroupSpec A;
  A.BaseName = "burst";
  A.Count = 1;
  A.Prefix = {seg("main")};
  A.Sizes = {16};
  A.ByteShare = 0.5;
  A.Lifetime = LifetimeDistribution::constant(10);
  A.BurstLength = 64;
  addGroup(Model, A);
  GroupSpec B;
  B.BaseName = "plain";
  B.Count = 1;
  B.Prefix = {seg("main")};
  B.Sizes = {16};
  B.ByteShare = 0.5;
  B.Lifetime = LifetimeDistribution::constant(20);
  addGroup(Model, B);

  FunctionRegistry Reg;
  RunOptions O;
  AllocationTrace T = runWorkload(Model, O, Reg);
  uint64_t BurstObjects = 0;
  for (const AllocRecord &R : T.records())
    if (R.Lifetime == 10)
      ++BurstObjects;
  EXPECT_NEAR(static_cast<double>(BurstObjects) / T.size(), 0.5, 0.05);
}

TEST(WorkloadRunnerTest, NonHeapRefsHitTargetPercent) {
  ProgramModel Model = cfracModel();
  FunctionRegistry Reg;
  RunOptions O;
  O.Scale = 0.005;
  AllocationTrace T = runWorkload(Model, O, Reg);
  uint64_t HeapRefs = 0;
  for (const AllocRecord &R : T.records())
    HeapRefs += R.Refs;
  double Pct = 100.0 * static_cast<double>(HeapRefs) /
               static_cast<double>(HeapRefs + T.nonHeapRefs());
  EXPECT_NEAR(Pct, Model.TargetHeapRefPercent, 0.5);
}

namespace {

class ProgramModelTest : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(ProgramModelTest, ModelIsWellFormed) {
  ProgramModel Model = allPrograms()[GetParam()];
  EXPECT_FALSE(Model.Sites.empty());
  EXPECT_GT(Model.BaseObjects, 100000u);
  EXPECT_NE(paperData(Model.Name), nullptr);
  for (const SiteSpec &S : Model.Sites) {
    EXPECT_FALSE(S.Path.empty());
    EXPECT_GE(S.Size, 1u);
    EXPECT_GT(S.Weight, 0.0);
    EXPECT_FALSE(S.TrainOnly && S.TestOnly);
  }
}

TEST_P(ProgramModelTest, SmallRunExercisesBothKinds) {
  ProgramModel Model = allPrograms()[GetParam()];
  FunctionRegistry Reg;
  RunOptions O;
  O.Scale = 0.003;
  O.Kind = RunKind::Train;
  AllocationTrace Train = runWorkload(Model, O, Reg);
  O.Kind = RunKind::Test;
  AllocationTrace Test = runWorkload(Model, O, Reg);
  EXPECT_GT(Train.size(), 1000u);
  EXPECT_GT(Test.size(), 1000u);
  EXPECT_GT(Train.chainCount(), 10u);
}

INSTANTIATE_TEST_SUITE_P(AllFive, ProgramModelTest, ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return std::string(
                               PaperPrograms[Info.param].Name);
                         });

TEST(WorkloadRunnerTest, TypeIdsStableAcrossRunKinds) {
  ProgramModel Model = gawkModel();
  FunctionRegistry Reg;
  RunOptions O;
  O.Scale = 0.005;
  O.Kind = RunKind::Train;
  AllocationTrace Train = runWorkload(Model, O, Reg);
  O.Kind = RunKind::Test;
  AllocationTrace Test = runWorkload(Model, O, Reg);
  // Records from the same chain must carry the same TypeId in both runs.
  std::map<uint64_t, uint32_t> TrainTypes, TestTypes;
  for (const AllocRecord &R : Train.records())
    TrainTypes[Train.chain(R.ChainIndex).hash()] = R.TypeId;
  for (const AllocRecord &R : Test.records())
    TestTypes[Test.chain(R.ChainIndex).hash()] = R.TypeId;
  size_t Compared = 0;
  for (const auto &[Hash, Type] : TrainTypes) {
    auto It = TestTypes.find(Hash);
    if (It == TestTypes.end())
      continue;
    EXPECT_EQ(It->second, Type);
    ++Compared;
  }
  EXPECT_GT(Compared, 50u);
}

TEST(WorkloadRunnerTest, SharedTypeNameSpansGroups) {
  ProgramModel Model = gawkModel();
  FunctionRegistry Reg;
  RunOptions O;
  O.Scale = 0.01;
  AllocationTrace T = runWorkload(Model, O, Reg);
  // gawk_node and gawk_nodemix both declare TypeName "NODE": some records
  // with distinct chains must share a TypeId.
  std::map<uint32_t, std::set<uint32_t>> ChainsByType;
  for (const AllocRecord &R : T.records())
    ChainsByType[R.TypeId].insert(R.ChainIndex);
  bool SomeTypeSpansChains = false;
  for (const auto &[Type, Chains] : ChainsByType)
    SomeTypeSpansChains |= Chains.size() > 1;
  EXPECT_TRUE(SomeTypeSpansChains);
}

TEST(WorkloadRunnerTest, SizeJitterStaysWithinBound) {
  ProgramModel Model;
  Model.BaseObjects = 5000;
  SiteSpec S;
  S.Label = "jit";
  S.Path = {seg("main")};
  S.Size = 40;
  S.SizeJitter = 3;
  S.Weight = 1.0;
  S.Lifetime = LifetimeDistribution::constant(10);
  Model.Sites.push_back(S);
  FunctionRegistry Reg;
  RunOptions O;
  AllocationTrace T = runWorkload(Model, O, Reg);
  bool SawJitter = false;
  for (const AllocRecord &R : T.records()) {
    EXPECT_GE(R.Size, 40u);
    EXPECT_LE(R.Size, 43u);
    SawJitter |= R.Size != 40;
  }
  EXPECT_TRUE(SawJitter);
}

TEST(PaperDataTest, LookupCoversAllPrograms) {
  for (const ProgramModel &Model : allPrograms()) {
    const PaperProgramData *Data = paperData(Model.Name);
    ASSERT_NE(Data, nullptr) << Model.Name;
    EXPECT_EQ(Model.Name, Data->Name);
    EXPECT_GT(Data->TotalBytesM, 0.0);
    // Chain-length tables are monotone up to length 7 in the paper.
    for (int I = 1; I < 7; ++I)
      EXPECT_GE(Data->ChainPredPercent[I], Data->ChainPredPercent[I - 1]);
  }
  EXPECT_EQ(paperData("NOPE"), nullptr);
}

TEST(WorkloadRunnerTest, SameSeedSerializesByteIdentical) {
  // Stronger than record-by-record equality: the serialized bytes cover
  // the chain table, non-heap refs, and totals too, so any hidden
  // nondeterminism (hash-map iteration order, thread interleaving in the
  // harness) shows up as a byte diff.
  ProgramModel Model = cfracModel();
  RunOptions O;
  O.Scale = 0.002;
  std::stringstream A, B;
  {
    FunctionRegistry Reg;
    writeTraceBinary(runWorkload(Model, O, Reg), A);
  }
  {
    FunctionRegistry Reg;
    writeTraceBinary(runWorkload(Model, O, Reg), B);
  }
  EXPECT_EQ(A.str(), B.str());
}

TEST(WorkloadRunnerTest, GeneratedTracePassesShadowOracle) {
  // Model-generated traces must satisfy every allocator invariant the
  // fuzzer checks: all four families, both replay paths, and the
  // schedule differential.
  for (ProgramModel (*Make)() : {cfracModel, gawkModel}) {
    ProgramModel Model = Make();
    FunctionRegistry Reg;
    RunOptions O;
    O.Scale = 0.001;
    AllocationTrace T = runWorkload(Model, O, Reg);
    ASSERT_GT(T.size(), 0u) << Model.Name;
    ShadowReport Report = shadowCheckAll(T);
    EXPECT_TRUE(Report.clean())
        << Model.Name << ": " << Report.summary()
        << (Report.Violations.empty()
                ? ""
                : "; first: " + Report.Violations[0].Detail);
  }
}
