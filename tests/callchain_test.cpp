//===- tests/callchain_test.cpp - Call-chain abstraction tests -------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "callchain/CallChain.h"
#include "callchain/ChainEncryption.h"
#include "callchain/FunctionRegistry.h"
#include "callchain/ShadowStack.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <set>
#include <vector>

using namespace lifepred;

TEST(CallChainTest, PushPopDepth) {
  CallChain C;
  EXPECT_TRUE(C.empty());
  C.push(1);
  C.push(2);
  EXPECT_EQ(C.depth(), 2u);
  EXPECT_EQ(C.innermost(), 2u);
  C.pop();
  EXPECT_EQ(C.innermost(), 1u);
}

TEST(CallChainTest, LastNTakesInnermost) {
  CallChain C = {1, 2, 3, 4, 5};
  EXPECT_EQ(C.lastN(2), (CallChain{4, 5}));
  EXPECT_EQ(C.lastN(1), (CallChain{5}));
  EXPECT_EQ(C.lastN(5), C);
  EXPECT_EQ(C.lastN(99), C); // Longer than the chain: whole chain.
  EXPECT_EQ(C.lastN(0), CallChain{});
}

TEST(CallChainTest, PruningCollapsesSimpleCycle) {
  // main > eval > eval > eval > apply: the recursion collapses.
  CallChain C = {1, 2, 2, 2, 3};
  EXPECT_EQ(C.pruned(), (CallChain{1, 2, 3}));
}

TEST(CallChainTest, PruningCollapsesLongCycle) {
  // main > a > b > a > b > c: the a>b cycle collapses back to the first a.
  CallChain C = {1, 2, 3, 2, 3, 4};
  EXPECT_EQ(C.pruned(), (CallChain{1, 2, 3, 4}));
}

TEST(CallChainTest, PruningIsIdempotent) {
  Rng R(3);
  for (int Trial = 0; Trial < 200; ++Trial) {
    CallChain C;
    for (int I = 0; I < 12; ++I)
      C.push(static_cast<FunctionId>(R.nextBelow(5)));
    CallChain Once = C.pruned();
    EXPECT_EQ(Once.pruned(), Once);
  }
}

TEST(CallChainTest, PrunedChainHasNoRepeats) {
  Rng R(4);
  for (int Trial = 0; Trial < 200; ++Trial) {
    CallChain C;
    for (int I = 0; I < 16; ++I)
      C.push(static_cast<FunctionId>(R.nextBelow(6)));
    CallChain P = C.pruned();
    std::set<FunctionId> Seen(P.functions().begin(), P.functions().end());
    EXPECT_EQ(Seen.size(), P.depth());
  }
}

TEST(CallChainTest, PruningPreservesInnermostFunction) {
  Rng R(5);
  for (int Trial = 0; Trial < 200; ++Trial) {
    CallChain C;
    for (int I = 0; I < 10; ++I)
      C.push(static_cast<FunctionId>(R.nextBelow(4)));
    EXPECT_EQ(C.pruned().innermost(), C.innermost());
  }
}

TEST(CallChainTest, PruningNoOpWithoutCycles) {
  CallChain C = {1, 2, 3, 4};
  EXPECT_EQ(C.pruned(), C);
}

TEST(CallChainTest, HashDistinguishesOrderAndLength) {
  EXPECT_NE((CallChain{1, 2}).hash(), (CallChain{2, 1}).hash());
  EXPECT_NE((CallChain{1, 2}).hash(), (CallChain{1, 2, 2}).hash());
  EXPECT_NE((CallChain{1}).hash(), (CallChain{1, 1}).hash());
  EXPECT_EQ((CallChain{1, 2, 3}).hash(), (CallChain{1, 2, 3}).hash());
}

TEST(CallChainTest, HashCollisionsRareAcrossRandomChains) {
  Rng R(6);
  std::set<uint64_t> Hashes;
  std::set<std::vector<FunctionId>> Chains;
  for (int Trial = 0; Trial < 5000; ++Trial) {
    CallChain C;
    unsigned Depth = 1 + static_cast<unsigned>(R.nextBelow(8));
    for (unsigned I = 0; I < Depth; ++I)
      C.push(static_cast<FunctionId>(R.nextBelow(50)));
    Chains.insert(C.functions());
    Hashes.insert(C.hash());
  }
  EXPECT_EQ(Hashes.size(), Chains.size());
}

TEST(FunctionRegistryTest, InternIsStableAndDense) {
  FunctionRegistry Reg;
  FunctionId A = Reg.intern("malloc");
  FunctionId B = Reg.intern("xmalloc");
  EXPECT_EQ(Reg.intern("malloc"), A);
  EXPECT_EQ(B, A + 1);
  EXPECT_EQ(Reg.name(A), "malloc");
  EXPECT_EQ(Reg.name(9999), "<unknown>");
  EXPECT_EQ(Reg.size(), 2u);
}

TEST(FunctionRegistryTest, ChainOfInternsPath) {
  FunctionRegistry Reg;
  CallChain C = Reg.chainOf({"main", "parse", "alloc"});
  EXPECT_EQ(C.depth(), 3u);
  EXPECT_EQ(Reg.name(C.functions()[0]), "main");
  EXPECT_EQ(Reg.name(C.innermost()), "alloc");
}

TEST(ChainEncryptionTest, KeyIsXorOfIds) {
  ChainEncryption Enc;
  Enc.setId(1, 0x00ff);
  Enc.setId(2, 0x0f0f);
  EXPECT_EQ(Enc.keyFor(CallChain{1, 2}), 0x00ff ^ 0x0f0f);
  EXPECT_EQ(Enc.keyFor(CallChain{2, 1}), Enc.keyFor(CallChain{1, 2}));
  EXPECT_EQ(Enc.keyFor(CallChain{}), 0);
}

TEST(ChainEncryptionTest, DuplicateFunctionsCancel) {
  // XOR's self-inverse property: recursion makes chains collide — exactly
  // the weakness the paper's id assignment mitigates.
  ChainEncryption Enc;
  Enc.setId(1, 0x1234);
  Enc.setId(2, 0x00aa);
  EXPECT_EQ(Enc.keyFor(CallChain{1, 1, 2}), Enc.keyFor(CallChain{2}));
}

TEST(ChainEncryptionTest, AssignmentAvoidsCollisionsOnRealisticChains) {
  Rng R(7);
  std::vector<CallChain> Chains;
  for (FunctionId Leaf = 0; Leaf < 60; ++Leaf)
    Chains.push_back(CallChain{100, 101, Leaf, 200});
  ChainEncryption Enc = ChainEncryption::assign(Chains, R, 16);
  EXPECT_EQ(Enc.countCollisions(Chains), 0u);
}

TEST(ChainEncryptionTest, CollisionCountingCountsBothSides) {
  ChainEncryption Enc;
  Enc.setId(1, 7);
  Enc.setId(2, 7);
  std::vector<CallChain> Chains = {CallChain{1}, CallChain{2}};
  EXPECT_EQ(Enc.countCollisions(Chains), 2u);
}

TEST(ShadowStackTest, CaptureMatchesPushes) {
  ShadowStack &S = ShadowStack::current();
  S.clear();
  S.push(10);
  S.push(20);
  S.push(30);
  EXPECT_EQ(S.capture(), (CallChain{10, 20, 30}));
  EXPECT_EQ(S.captureLastN(2), (CallChain{20, 30}));
  EXPECT_EQ(S.captureLastN(9), (CallChain{10, 20, 30}));
  S.clear();
}

TEST(ShadowStackTest, ScopedFrameUnwinds) {
  ShadowStack &S = ShadowStack::current();
  S.clear();
  {
    ScopedFrame F1(1);
    EXPECT_EQ(S.depth(), 1u);
    {
      ScopedFrame F2(2);
      EXPECT_EQ(S.depth(), 2u);
    }
    EXPECT_EQ(S.depth(), 1u);
  }
  EXPECT_EQ(S.depth(), 0u);
}

TEST(ShadowStackTest, IncrementalEncryptionKey) {
  ShadowStack &S = ShadowStack::current();
  S.clear();
  S.push(1, 0x0011);
  S.push(2, 0x0101);
  EXPECT_EQ(S.currentKey(), 0x0011 ^ 0x0101);
  S.pop();
  EXPECT_EQ(S.currentKey(), 0x0011);
  S.pop();
  EXPECT_EQ(S.currentKey(), 0);
}
