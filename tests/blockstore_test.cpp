//===- tests/blockstore_test.cpp - Flat vs legacy block store --------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Lockstep differential tests for the flat boundary-tag block store:
// random traces of more than one hundred thousand replay events drive the
// flat FirstFitAllocator and the retained map-based
// LegacyFirstFitAllocator through identical operation sequences, asserting
// byte-identical behaviour — every returned address, every counter, and
// every heap statistic — under all three fit policies.  The opt-in binned
// best fit is checked for placement identity (addresses and heaps) with
// its own SearchSteps accounting.
//
//===----------------------------------------------------------------------===//

#include "alloc/LegacyFirstFitAllocator.h"
#include "support/Random.h"
#include "trace/TraceReplayer.h"

#include "gtest/gtest.h"

#include <string>
#include <tuple>
#include <vector>

using namespace lifepred;

namespace {

/// A random trace with several sites of varied size and lifetime (same
/// shape as differential_test's generator, sized for >=100k events).
AllocationTrace randomTrace(uint64_t Seed, size_t Objects) {
  Rng R(Seed);
  AllocationTrace T;
  struct Site {
    uint32_t Chain;
    uint32_t Size;
    uint64_t LifeLo, LifeHi;
  };
  std::vector<Site> Sites;
  unsigned SiteCount = 3 + static_cast<unsigned>(R.nextBelow(10));
  for (unsigned I = 0; I < SiteCount; ++I) {
    CallChain Chain;
    Chain.push(static_cast<FunctionId>(I));
    uint64_t Lo = 1 + R.nextBelow(1000);
    uint64_t Hi = Lo + R.nextBelow(200000);
    Sites.push_back({T.internChain(Chain),
                     static_cast<uint32_t>(8 + R.nextBelow(6000)), Lo, Hi});
  }
  for (size_t I = 0; I < Objects; ++I) {
    const Site &S = Sites[R.nextBelow(Sites.size())];
    AllocRecord Record;
    Record.Size = S.Size;
    Record.ChainIndex = S.Chain;
    Record.Lifetime = R.nextBool(0.02)
                          ? NeverFreed
                          : static_cast<uint64_t>(R.nextInRange(
                                static_cast<int64_t>(S.LifeLo),
                                static_cast<int64_t>(S.LifeHi)));
    T.append(Record);
  }
  return T;
}

/// Drives the flat and legacy allocators in lockstep, asserting equal
/// addresses and equal running statistics at every event.
class LockstepConsumer : public TraceConsumer {
public:
  LockstepConsumer(FirstFitAllocator &Flat, LegacyFirstFitAllocator &Legacy,
                   size_t ObjectCount, bool ExpectEqualCounters)
      : Flat(Flat), Legacy(Legacy),
        ExpectEqualCounters(ExpectEqualCounters) {
    Addresses.resize(ObjectCount);
  }

  void onAlloc(uint64_t Id, const AllocRecord &Record, uint64_t) override {
    uint64_t FlatAddr = Flat.allocate(Record.Size);
    uint64_t LegacyAddr = Legacy.allocate(Record.Size);
    ASSERT_EQ(FlatAddr, LegacyAddr) << "placement diverged at alloc " << Id;
    Addresses[Id] = FlatAddr;
    checkStats(Id);
  }

  void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
    Flat.free(Addresses[Id]);
    Legacy.free(Addresses[Id]);
    checkStats(Id);
  }

private:
  void checkStats(uint64_t Id) {
    ASSERT_EQ(Flat.heapBytes(), Legacy.heapBytes()) << "at event " << Id;
    ASSERT_EQ(Flat.liveBytes(), Legacy.liveBytes()) << "at event " << Id;
    ASSERT_EQ(Flat.freeBlockCount(), Legacy.freeBlockCount())
        << "at event " << Id;
    if (ExpectEqualCounters) {
      // Full counter struct: any divergence — SearchSteps, Splits,
      // Coalesces, Grows, BinProbes — trips at the first event it appears.
      ASSERT_TRUE(Flat.counters() == Legacy.counters())
          << "counters diverged at event " << Id;
    }
  }

  FirstFitAllocator &Flat;
  LegacyFirstFitAllocator &Legacy;
  bool ExpectEqualCounters;
  std::vector<uint64_t> Addresses;
};

/// Replay events in \p T (allocs plus derived frees).
uint64_t eventCount(const AllocationTrace &T) {
  uint64_t Events = T.size();
  for (const AllocRecord &R : T.records())
    if (R.Lifetime != NeverFreed)
      ++Events;
  return Events;
}

class BlockStoreDifferentialTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, FitPolicy>> {};

const char *policyName(FitPolicy Policy) {
  switch (Policy) {
  case FitPolicy::RovingFirstFit:
    return "Roving";
  case FitPolicy::AddressOrderedFirstFit:
    return "Address";
  case FitPolicy::BestFit:
    return "Best";
  }
  return "?";
}

} // namespace

TEST_P(BlockStoreDifferentialTest, FlatMatchesLegacyBitForBit) {
  auto [Seed, Policy] = GetParam();
  AllocationTrace T = randomTrace(Seed, 60000);
  ASSERT_GE(eventCount(T), 100000u) << "trace too small to be meaningful";

  FirstFitAllocator::Config Config;
  Config.Policy = Policy;
  FirstFitAllocator Flat(Config);
  LegacyFirstFitAllocator Legacy(Config);

  LockstepConsumer Consumer(Flat, Legacy, T.size(),
                            /*ExpectEqualCounters=*/true);
  replayTrace(T, Consumer);

  EXPECT_EQ(Flat.maxHeapBytes(), Legacy.maxHeapBytes());
  EXPECT_EQ(Flat.heapBytes(), Legacy.heapBytes());
  EXPECT_EQ(Flat.liveBytes(), Legacy.liveBytes());
  EXPECT_EQ(Flat.freeBlockCount(), Legacy.freeBlockCount());
  EXPECT_TRUE(Flat.counters() == Legacy.counters());
  // Neither side uses the binned search here.
  EXPECT_EQ(Flat.counters().BinProbes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, BlockStoreDifferentialTest,
    ::testing::Combine(::testing::Values(11u, 22u, 33u, 44u),
                       ::testing::Values(FitPolicy::RovingFirstFit,
                                         FitPolicy::AddressOrderedFirstFit,
                                         FitPolicy::BestFit)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, FitPolicy>>
           &Info) {
      return std::string(policyName(std::get<1>(Info.param))) + "_seed" +
             std::to_string(std::get<0>(Info.param));
    });

namespace {

class BinnedBestFitTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

// The binned best fit is a different search with identical placement:
// addresses, heaps, splits, and coalesces all match the scanning legacy
// best fit; only the inspection accounting differs — bin inspections are
// counted as BinProbes, and no list scan happens at all.
TEST_P(BinnedBestFitTest, PlacementMatchesScanningBestFit) {
  AllocationTrace T = randomTrace(GetParam() ^ 0xb135, 60000);

  FirstFitAllocator::Config Config;
  Config.Policy = FitPolicy::BestFit;
  Config.BestFitBins = true;
  FirstFitAllocator Flat(Config);
  LegacyFirstFitAllocator Legacy(Config);

  LockstepConsumer Consumer(Flat, Legacy, T.size(),
                            /*ExpectEqualCounters=*/false);
  replayTrace(T, Consumer);

  EXPECT_EQ(Flat.maxHeapBytes(), Legacy.maxHeapBytes());
  EXPECT_EQ(Flat.counters().Splits, Legacy.counters().Splits);
  EXPECT_EQ(Flat.counters().Coalesces, Legacy.counters().Coalesces);
  EXPECT_EQ(Flat.counters().Grows, Legacy.counters().Grows);
  // All inspections happen in the bins: the list-scan counter stays zero
  // and every probe lands in BinProbes.
  EXPECT_EQ(Flat.counters().SearchSteps, 0u);
  EXPECT_GT(Flat.counters().BinProbes, 0u);
  // The bins exist to inspect fewer blocks; on these traces the probe
  // count must not exceed the legacy full-list scan's.
  EXPECT_LE(Flat.counters().BinProbes, Legacy.counters().SearchSteps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinnedBestFitTest,
                         ::testing::Values(7u, 8u, 9u),
                         [](const ::testing::TestParamInfo<uint64_t> &Info) {
                           return "seed" + std::to_string(Info.param);
                         });
