//===- tests/verify_test.cpp - Shadow heap / fuzzer / shrinker tests -------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Trainer.h"
#include "support/Random.h"
#include "verify/ShadowHeap.h"
#include "verify/ShadowSim.h"
#include "verify/Shrinker.h"
#include "verify/TraceFuzzer.h"

#include "gtest/gtest.h"

using namespace lifepred;

namespace {

/// A small trace with mixed sizes and lifetimes for direct shadow tests.
AllocationTrace smallTrace() { return generateFuzzTrace(FuzzProfile::Uniform, 42, 64); }

} // namespace

//===----------------------------------------------------------------------===//
// LiveSpanSet
//===----------------------------------------------------------------------===//

TEST(LiveSpanSetTest, DetectsOverlap) {
  ViolationLog Log;
  LiveSpanSet Spans;
  Spans.insert(Log, 0, 1000, 64);
  Spans.insert(Log, 1, 1100, 64); // Disjoint.
  EXPECT_TRUE(Log.clean());
  Spans.insert(Log, 2, 1032, 8); // Inside [1000, 1064).
  EXPECT_EQ(Log.total(), 1u);
  EXPECT_EQ(Log.violations()[0].Invariant, "live-disjointness");
}

TEST(LiveSpanSetTest, ZeroSizeSpansStillCollide) {
  ViolationLog Log;
  LiveSpanSet Spans;
  Spans.insert(Log, 0, 500, 0);
  Spans.insert(Log, 1, 500, 0); // Same bump address: must be flagged.
  EXPECT_EQ(Log.total(), 1u);
}

TEST(LiveSpanSetTest, FreeOfDeadAddress) {
  ViolationLog Log;
  LiveSpanSet Spans;
  Spans.insert(Log, 0, 1000, 16);
  EXPECT_TRUE(Spans.erase(Log, 1, 1000));
  EXPECT_FALSE(Spans.erase(Log, 2, 1000)); // Double free.
  EXPECT_EQ(Log.total(), 1u);
  EXPECT_EQ(Log.violations()[0].Invariant, "free-of-dead");
}

//===----------------------------------------------------------------------===//
// Shadow conformance on clean allocators
//===----------------------------------------------------------------------===//

TEST(ShadowFirstFitTest, CleanRunHasNoViolations) {
  for (FitPolicy Policy :
       {FitPolicy::RovingFirstFit, FitPolicy::AddressOrderedFirstFit,
        FitPolicy::BestFit}) {
    FirstFitAllocator::Config Cfg;
    Cfg.Policy = Policy;
    FirstFitAllocator Alloc(Cfg);
    ViolationLog Log;
    ShadowFirstFit Shadow(Alloc, Log, /*AuditStride=*/8);
    Rng R(7);
    std::vector<uint64_t> Live;
    for (int I = 0; I < 400; ++I) {
      if (Live.empty() || R.nextBool(0.6)) {
        uint32_t Size = static_cast<uint32_t>(R.nextInRange(1, 512));
        uint64_t Addr = Alloc.allocate(Size);
        Shadow.onAlloc(Size, Addr);
        Live.push_back(Addr);
      } else {
        size_t Pick = R.nextBelow(Live.size());
        uint64_t Addr = Live[Pick];
        Live.erase(Live.begin() + Pick);
        Alloc.free(Addr);
        Shadow.onFree(Addr);
      }
    }
    for (uint64_t Addr : Live) {
      Alloc.free(Addr);
      Shadow.onFree(Addr);
    }
    Shadow.finish();
    EXPECT_TRUE(Log.clean()) << "policy " << static_cast<int>(Policy)
                             << ": " << Log.total() << " violations; first: "
                             << (Log.violations().empty()
                                     ? ""
                                     : Log.violations()[0].Detail);
  }
}

TEST(ShadowBsdTest, CleanRunHasNoViolations) {
  BsdAllocator Alloc;
  ViolationLog Log;
  ShadowBsd Shadow(Alloc, Log, /*AuditStride=*/8);
  Rng R(9);
  std::vector<std::pair<uint64_t, uint32_t>> Live;
  for (int I = 0; I < 400; ++I) {
    if (Live.empty() || R.nextBool(0.6)) {
      uint32_t Size = static_cast<uint32_t>(R.nextInRange(1, 4096));
      uint64_t Addr = Alloc.allocate(Size);
      Shadow.onAlloc(Size, Addr);
      Live.push_back({Addr, Size});
    } else {
      size_t Pick = R.nextBelow(Live.size());
      uint64_t Addr = Live[Pick].first;
      Live.erase(Live.begin() + Pick);
      Alloc.free(Addr);
      Shadow.onFree(Addr);
    }
  }
  Shadow.finish();
  EXPECT_TRUE(Log.clean()) << Log.total() << " violations";
}

TEST(ShadowArenaTest, CleanRunHasNoViolations) {
  ArenaAllocator Alloc;
  ViolationLog Log;
  ShadowArena Shadow(Alloc, Log, /*AuditStride=*/8);
  Rng R(11);
  std::vector<uint64_t> Live;
  for (int I = 0; I < 600; ++I) {
    if (Live.empty() || R.nextBool(0.65)) {
      uint32_t Size = static_cast<uint32_t>(R.nextInRange(1, 900));
      bool Predicted = R.nextBool(0.5);
      uint64_t Addr = Alloc.allocate(Size, Predicted);
      Shadow.onAlloc(Size, Predicted, Addr);
      Live.push_back(Addr);
    } else {
      size_t Pick = R.nextBelow(Live.size());
      uint64_t Addr = Live[Pick];
      Live.erase(Live.begin() + Pick);
      Alloc.free(Addr);
      Shadow.onFree(Addr);
    }
  }
  Shadow.finish();
  EXPECT_TRUE(Log.clean())
      << Log.total() << " violations; first: "
      << (Log.violations().empty() ? "" : Log.violations()[0].Detail);
}

TEST(ShadowMultiArenaTest, CleanRunHasNoViolations) {
  MultiArenaAllocator::Config Cfg;
  Cfg.Bands.resize(2);
  MultiArenaAllocator Alloc(Cfg);
  uint8_t BandCount = 2;
  ViolationLog Log;
  ShadowMultiArena Shadow(Alloc, Log, /*AuditStride=*/8);
  Rng R(13);
  std::vector<uint64_t> Live;
  for (int I = 0; I < 600; ++I) {
    if (Live.empty() || R.nextBool(0.65)) {
      uint32_t Size = static_cast<uint32_t>(R.nextInRange(1, 900));
      uint8_t Band = R.nextBool(0.3)
                         ? MultiArenaAllocator::GeneralBand
                         : static_cast<uint8_t>(R.nextBelow(BandCount));
      uint64_t Addr = Alloc.allocate(Size, Band);
      Shadow.onAlloc(Size, Band, Addr);
      Live.push_back(Addr);
    } else {
      size_t Pick = R.nextBelow(Live.size());
      uint64_t Addr = Live[Pick];
      Live.erase(Live.begin() + Pick);
      Alloc.free(Addr);
      Shadow.onFree(Addr);
    }
  }
  Shadow.finish();
  EXPECT_TRUE(Log.clean())
      << Log.total() << " violations; first: "
      << (Log.violations().empty() ? "" : Log.violations()[0].Detail);
}

//===----------------------------------------------------------------------===//
// Mutation tests: a deliberately wrong stream must be caught
//===----------------------------------------------------------------------===//

TEST(ShadowMutationTest, MismatchedPolicyIsCaught) {
  // Observed allocator places best-fit; the replica expects roving first
  // fit.  On a workload with fragmentation the placements diverge and the
  // shadow must notice.
  FirstFitAllocator::Config BestCfg;
  BestCfg.Policy = FitPolicy::BestFit;
  FirstFitAllocator Alloc(BestCfg);
  FirstFitAllocator::Config ReplicaCfg; // Roving first fit.
  ViolationLog Log;
  ShadowFirstFit Shadow(nullptr, Log, ReplicaCfg);
  Rng R(17);
  std::vector<uint64_t> Live;
  for (int I = 0; I < 300 && Log.clean(); ++I) {
    if (Live.empty() || R.nextBool(0.5)) {
      uint32_t Size = static_cast<uint32_t>(R.nextInRange(1, 700));
      uint64_t Addr = Alloc.allocate(Size);
      Shadow.onAlloc(Size, Addr);
      Live.push_back(Addr);
    } else {
      size_t Pick = R.nextBelow(Live.size());
      uint64_t Addr = Live[Pick];
      Live.erase(Live.begin() + Pick);
      Alloc.free(Addr);
      Shadow.onFree(Addr);
    }
  }
  EXPECT_FALSE(Log.clean());
  EXPECT_EQ(Log.violations()[0].Invariant, "placement-conformance");
}

TEST(ShadowMutationTest, ShiftedAddressStreamIsCaught) {
  // Same allocator both sides, but the reported addresses are off by 8:
  // placement conformance must fire on the first allocation.
  FirstFitAllocator Alloc;
  ViolationLog Log;
  ShadowFirstFit Shadow(nullptr, Log, FirstFitAllocator::Config{});
  uint64_t Addr = Alloc.allocate(64);
  Shadow.onAlloc(64, Addr + 8);
  EXPECT_FALSE(Log.clean());
  EXPECT_EQ(Log.violations()[0].Invariant, "placement-conformance");
}

TEST(ShadowMutationTest, BsdWrongBucketAddressIsCaught) {
  BsdAllocator Alloc;
  ViolationLog Log;
  ShadowBsd Shadow(Alloc, Log);
  uint64_t Addr = Alloc.allocate(100);
  Shadow.onAlloc(100, Addr ^ 0x40);
  EXPECT_FALSE(Log.clean());
}

TEST(ShadowMutationTest, FlippedPredictionBitIsCaught) {
  // The allocator routes with the true prediction; the shadow replays the
  // opposite bit.  A short-lived prediction lands in the arena area while
  // the model expects the general heap (or vice versa): routing
  // conformance must fire.
  ArenaAllocator Alloc;
  ViolationLog Log;
  ShadowArena Shadow(Alloc, Log);
  uint64_t Addr = Alloc.allocate(64, /*PredictedShortLived=*/true);
  Shadow.onAlloc(64, /*PredictedShortLived=*/false, Addr);
  EXPECT_FALSE(Log.clean());
  EXPECT_EQ(Log.violations()[0].Invariant, "routing-conformance");
}

TEST(ShadowMutationTest, LostFreeIsCaught) {
  // The allocator frees but the shadow never hears about it; the byte
  // accounting cross-check must diverge on the next operation.
  FirstFitAllocator Alloc;
  ViolationLog Log;
  ShadowFirstFit Shadow(Alloc, Log, /*AuditStride=*/1);
  uint64_t A = Alloc.allocate(64);
  Shadow.onAlloc(64, A);
  Alloc.free(A); // Not forwarded to the shadow.
  uint64_t B = Alloc.allocate(32);
  Shadow.onAlloc(32, B);
  Shadow.finish();
  EXPECT_FALSE(Log.clean());
}

//===----------------------------------------------------------------------===//
// Shadow-checked replays and the fuzzer
//===----------------------------------------------------------------------===//

TEST(ShadowSimTest, AllProfilesCleanOnBothPaths) {
  for (FuzzProfile Profile : allProfiles()) {
    ShadowReport Report = runFuzzCase(Profile, /*Seed=*/1, /*Objects=*/200);
    EXPECT_TRUE(Report.clean())
        << profileName(Profile) << ": " << Report.summary()
        << (Report.Violations.empty()
                ? ""
                : "; first: " + Report.Violations[0].Detail);
    EXPECT_GT(Report.Events, 0u);
    EXPECT_GT(Report.Checks, 0u);
  }
}

TEST(ShadowSimTest, GeneratedTracesAreDeterministic) {
  AllocationTrace A = generateFuzzTrace(FuzzProfile::Mixed, 99, 150);
  AllocationTrace B = generateFuzzTrace(FuzzProfile::Mixed, 99, 150);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A.records()[I].Size, B.records()[I].Size);
    EXPECT_EQ(A.records()[I].Lifetime, B.records()[I].Lifetime);
    EXPECT_EQ(A.records()[I].ChainIndex, B.records()[I].ChainIndex);
  }
  AllocationTrace C = generateFuzzTrace(FuzzProfile::Mixed, 100, 150);
  bool Differs = A.size() != C.size();
  for (size_t I = 0; !Differs && I < A.size(); ++I)
    Differs = A.records()[I].Size != C.records()[I].Size ||
              A.records()[I].Lifetime != C.records()[I].Lifetime;
  EXPECT_TRUE(Differs);
}

TEST(ShadowSimTest, ValidateTraceRejectsBadChainIndex) {
  AllocationTrace T;
  uint32_t Chain = T.internChain(CallChain{1});
  T.append({100, 64, Chain, 1});
  std::string Error;
  EXPECT_TRUE(validateTrace(T, Error));
  T.append({100, 64, Chain + 5, 1}); // Out of range.
  EXPECT_FALSE(validateTrace(T, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ShadowSimTest, DiffReplayPathsCleanOnGeneratedTrace) {
  ShadowReport Report = diffReplayPaths(smallTrace());
  EXPECT_TRUE(Report.clean()) << Report.summary();
}

TEST(ShadowSimTest, ShadowCheckAllCleanOnGeneratedTrace) {
  ShadowReport Report = shadowCheckAll(smallTrace());
  EXPECT_TRUE(Report.clean())
      << Report.summary()
      << (Report.Violations.empty() ? ""
                                    : "; first: " + Report.Violations[0].Detail);
  // All four families on both paths plus extra fit policies and the
  // schedule differential.
  EXPECT_GE(Report.Checks, 13u);
}

TEST(TraceFuzzerTest, ProfileNamesRoundTrip) {
  for (FuzzProfile Profile : allProfiles()) {
    std::optional<FuzzProfile> Back = profileByName(profileName(Profile));
    ASSERT_TRUE(Back.has_value()) << profileName(Profile);
    EXPECT_EQ(*Back, Profile);
  }
  EXPECT_FALSE(profileByName("nonsense").has_value());
}

TEST(TraceFuzzerTest, BinaryRoundTripFuzzHoldsUp) {
  std::string Error;
  BinaryFuzzStats Stats;
  EXPECT_TRUE(fuzzBinaryRoundTrip(/*Seed=*/5, /*Cases=*/4, Error, &Stats))
      << Error;
  EXPECT_GT(Stats.Cases, 0u);
}

//===----------------------------------------------------------------------===//
// Shrinker
//===----------------------------------------------------------------------===//

TEST(ShrinkerTest, CloneSubsetKeepsOnlyUsedChains) {
  AllocationTrace T;
  uint32_t C0 = T.internChain(CallChain{1, 2});
  uint32_t C1 = T.internChain(CallChain{3});
  T.append({10, 8, C0, 1});
  T.append({20, 16, C1, 1});
  T.append({30, 24, C0, 1});
  AllocationTrace Sub = cloneTraceSubset(T, {0, 2});
  EXPECT_EQ(Sub.size(), 2u);
  EXPECT_EQ(Sub.chainCount(), 1u); // Only C0 survives.
  EXPECT_EQ(Sub.records()[0].Size, 8u);
  EXPECT_EQ(Sub.records()[1].Size, 24u);
}

TEST(ShrinkerTest, ReducesToSingleCulpritRecord) {
  // The "bug" fires iff the trace contains a 4096-byte object.  Bury one
  // culprit in noise; the shrinker must isolate it.
  AllocationTrace Seed;
  Rng R(23);
  uint32_t Chain = Seed.internChain(CallChain{1});
  for (int I = 0; I < 120; ++I) {
    uint32_t Size = I == 57 ? 4096 : static_cast<uint32_t>(R.nextInRange(8, 64));
    Seed.append({static_cast<uint64_t>(R.nextInRange(10, 1000)), Size, Chain,
                 0});
  }
  auto HasCulprit = [](const AllocationTrace &T) {
    for (const AllocRecord &Rec : T.records())
      if (Rec.Size == 4096)
        return true;
    return false;
  };
  ShrinkStats Stats;
  AllocationTrace Minimal = shrinkTrace(Seed, HasCulprit, 2000, &Stats);
  ASSERT_EQ(Minimal.size(), 1u);
  EXPECT_EQ(Minimal.records()[0].Size, 4096u);
  // Field simplification canonicalizes everything the predicate ignores.
  EXPECT_EQ(Minimal.records()[0].Lifetime, 0u);
  EXPECT_GT(Stats.Reductions, 0u);
  EXPECT_LE(Stats.Probes, 2000u);
}

TEST(ShrinkerTest, DeterministicAcrossRuns) {
  AllocationTrace Seed = generateFuzzTrace(FuzzProfile::Uniform, 31, 100);
  auto Fails = [](const AllocationTrace &T) { return T.size() >= 3; };
  AllocationTrace A = shrinkTrace(Seed, Fails);
  AllocationTrace B = shrinkTrace(Seed, Fails);
  ASSERT_EQ(A.size(), B.size());
  EXPECT_EQ(A.size(), 3u);
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A.records()[I].Size, B.records()[I].Size);
    EXPECT_EQ(A.records()[I].Lifetime, B.records()[I].Lifetime);
  }
}

TEST(ShrinkerTest, RespectsProbeBudget) {
  AllocationTrace Seed = generateFuzzTrace(FuzzProfile::Uniform, 37, 200);
  uint64_t Budget = 25;
  ShrinkStats Stats;
  shrinkTrace(Seed, [](const AllocationTrace &) { return true; }, Budget,
              &Stats);
  EXPECT_LE(Stats.Probes, Budget);
}
