//===- tests/costmodel_test.cpp - Instruction cost model tests -------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/CostModel.h"

#include "gtest/gtest.h"

using namespace lifepred;

TEST(CostModelTest, FirstFitArithmetic) {
  CostModel M;
  FirstFitAllocator::Counters C;
  C.Allocs = 100;
  C.Frees = 100;
  C.SearchSteps = 300; // 3 per alloc.
  C.Splits = 50;
  C.Coalesces = 80;
  C.Grows = 10;
  InstrPerOp I = M.firstFit(C);
  EXPECT_DOUBLE_EQ(I.Alloc, M.FirstFitAllocBase + 3 * M.FirstFitSearchStep +
                                0.5 * M.FirstFitSplit +
                                0.1 * M.FirstFitGrow);
  EXPECT_DOUBLE_EQ(I.Free,
                   M.FirstFitFreeBase + 0.8 * M.FirstFitCoalesce);
  EXPECT_DOUBLE_EQ(I.total(), I.Alloc + I.Free);
}

TEST(CostModelTest, BsdArithmetic) {
  CostModel M;
  BsdAllocator::Counters C;
  C.Allocs = 10;
  C.Frees = 10;
  C.PageRefills = 1;
  C.BucketBits = 50; // 5 bits per alloc.
  InstrPerOp I = M.bsd(C);
  EXPECT_DOUBLE_EQ(I.Alloc,
                   M.BsdAllocBase + 5 * M.BsdBucketBit + 0.1 * M.BsdRefill);
  EXPECT_DOUBLE_EQ(I.Free, M.BsdFreeCost);
}

TEST(CostModelTest, ZeroOperationsGiveZeroCost) {
  CostModel M;
  FirstFitAllocator::Counters FF;
  EXPECT_DOUBLE_EQ(M.firstFit(FF).Alloc, 0.0);
  EXPECT_DOUBLE_EQ(M.firstFit(FF).Free, 0.0);
  BsdAllocator::Counters Bsd;
  EXPECT_DOUBLE_EQ(M.bsd(Bsd).total(), 0.0);
}

TEST(CostModelTest, ArenaChargesPredictionOnEveryAlloc) {
  CostModel M;
  ArenaAllocator::Counters C;
  C.ArenaAllocs = 90;
  C.GeneralAllocs = 10;
  C.ArenaFrees = 90;
  C.GeneralFrees = 10;
  FirstFitAllocator::Counters G;
  G.Allocs = 10;
  G.Frees = 10;
  InstrPerOp I = M.arena(C, G, /*UseCce=*/false, /*CallsPerAlloc=*/5);
  // 100 predictions at 18 instr + 90 bumps + 10 general allocs at base.
  double Expected = (100 * M.PredictLen4 + 90 * M.ArenaBump +
                     10 * M.FirstFitAllocBase) /
                    100.0;
  EXPECT_DOUBLE_EQ(I.Alloc, Expected);
  double ExpectedFree = (90 * M.ArenaFreeCost +
                         10 * (M.ArenaRangeCheck + M.FirstFitFreeBase)) /
                        100.0;
  EXPECT_DOUBLE_EQ(I.Free, ExpectedFree);
}

TEST(CostModelTest, CceCostScalesWithCallsPerAlloc) {
  CostModel M;
  ArenaAllocator::Counters C;
  C.ArenaAllocs = 100;
  C.ArenaFrees = 100;
  FirstFitAllocator::Counters G;
  InstrPerOp Low = M.arena(C, G, /*UseCce=*/true, 3.0);
  InstrPerOp High = M.arena(C, G, /*UseCce=*/true, 30.0);
  EXPECT_DOUBLE_EQ(High.Alloc - Low.Alloc, 27.0 * M.CcePerCall);
  // Frees are unaffected by the prediction method.
  EXPECT_DOUBLE_EQ(High.Free, Low.Free);
}

TEST(CostModelTest, CceCheaperThanLen4WhenFewCallsPerAlloc) {
  // 8 + 3*c < 18 iff c < 10/3: the paper's space-speed tradeoff.
  CostModel M;
  ArenaAllocator::Counters C;
  C.ArenaAllocs = 100;
  C.ArenaFrees = 100;
  FirstFitAllocator::Counters G;
  EXPECT_LT(M.arena(C, G, true, 3.0).Alloc,
            M.arena(C, G, false, 3.0).Alloc);
  EXPECT_GT(M.arena(C, G, true, 4.0).Alloc,
            M.arena(C, G, false, 4.0).Alloc);
}

TEST(CostModelTest, ScansAndResetsAreCharged) {
  CostModel M;
  ArenaAllocator::Counters C;
  C.ArenaAllocs = 10;
  C.ScanSteps = 160;
  C.Resets = 10;
  FirstFitAllocator::Counters G;
  InstrPerOp I = M.arena(C, G, false, 5.0);
  double Expected = (10 * M.PredictLen4 + 10 * M.ArenaBump +
                     160 * M.ArenaScanStep + 10 * M.ArenaReset) /
                    10.0;
  EXPECT_DOUBLE_EQ(I.Alloc, Expected);
}
