//===- tests/sim_test.cpp - Trace simulator tests --------------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sim/MultiArenaSimulator.h"
#include "sim/SimTelemetry.h"
#include "sim/TraceSimulator.h"
#include "support/Random.h"
#include "support/ThreadPool.h"
#include "trace/CompiledTrace.h"
#include "trace/TraceReplayer.h"
#include "workloads/Programs.h"
#include "workloads/WorkloadRunner.h"

#include "gtest/gtest.h"

using namespace lifepred;

namespace {

/// A trace of short-lived objects from one site plus rare long-lived ones
/// from another.
AllocationTrace churnTrace(uint64_t Seed, size_t Objects) {
  AllocationTrace T;
  Rng R(Seed);
  uint32_t ShortChain = T.internChain(CallChain{1, 2});
  uint32_t LongChain = T.internChain(CallChain{1, 3});
  for (size_t I = 0; I < Objects; ++I) {
    if (R.nextBool(0.95))
      T.append({static_cast<uint64_t>(R.nextInRange(8, 2000)), 32,
                ShortChain, 1});
    else
      T.append({static_cast<uint64_t>(R.nextInRange(100000, 400000)), 64,
                LongChain, 1});
  }
  return T;
}

} // namespace

TEST(SimTest, FirstFitBaselineProducesSaneMetrics) {
  AllocationTrace T = churnTrace(1, 20000);
  BaselineSimResult R = simulateFirstFit(T);
  EXPECT_GT(R.MaxHeapBytes, 0u);
  EXPECT_GE(R.MaxHeapBytes, R.MaxLiveBytes);
  EXPECT_EQ(R.FirstFit.Allocs, 20000u);
  EXPECT_EQ(R.FirstFit.Frees, 20000u);
  EXPECT_GT(R.Instr.Alloc, 0.0);
  EXPECT_GT(R.Instr.Free, 0.0);
}

TEST(SimTest, BsdBaselineFasterButFatterThanFirstFit) {
  AllocationTrace T = churnTrace(2, 20000);
  BaselineSimResult FF = simulateFirstFit(T);
  BaselineSimResult Bsd = simulateBsd(T);
  // The paper's Table 9 relationship: BSD free is far cheaper.
  EXPECT_LT(Bsd.Instr.Free, FF.Instr.Free);
  EXPECT_LT(Bsd.Instr.total(), FF.Instr.total());
}

TEST(SimTest, ArenaWithEmptyDatabaseDegeneratesToFirstFit) {
  // The paper: "the first-fit algorithm becomes the degenerate case of an
  // arena allocator that allocates no objects in arenas."
  AllocationTrace T = churnTrace(3, 20000);
  SiteDatabase Empty(SiteKeyPolicy::completeChain(), 32768);
  ArenaSimResult Arena = simulateArena(T, Empty, 5.0);
  BaselineSimResult FF = simulateFirstFit(T);
  EXPECT_EQ(Arena.Arena.ArenaAllocs, 0u);
  EXPECT_EQ(Arena.Arena.GeneralAllocs, 20000u);
  // Identical general-heap behaviour, plus the 64 KB arena area.
  EXPECT_EQ(Arena.MaxHeapBytes, FF.MaxHeapBytes + 64 * 1024);
  EXPECT_EQ(Arena.General.SearchSteps, FF.FirstFit.SearchSteps);
}

TEST(SimTest, TrainedDatabaseSendsShortLivedToArenas) {
  AllocationTrace T = churnTrace(4, 40000);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);
  ArenaSimResult R = simulateArena(T, DB, 5.0);
  // ~95% of objects are short-lived and their site qualifies.
  EXPECT_GT(R.arenaAllocPercent(), 90.0);
  EXPECT_EQ(R.Arena.ArenaFrees, R.Arena.ArenaAllocs);
}

TEST(SimTest, ArenaCceCostExceedsLen4ForManyCallsPerAlloc) {
  AllocationTrace T = churnTrace(5, 20000);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);
  ArenaSimResult R = simulateArena(T, DB, /*CallsPerAlloc=*/20.0);
  EXPECT_GT(R.InstrCce.Alloc, R.InstrLen4.Alloc);
  EXPECT_DOUBLE_EQ(R.InstrCce.Free, R.InstrLen4.Free);
}

TEST(SimTest, SuccessfulPredictionBeatsFirstFitCpuCost) {
  // The paper's GAWK case: near-total prediction makes arena allocation
  // far cheaper than first fit.
  AllocationTrace T;
  uint32_t C = T.internChain(CallChain{1, 2});
  Rng R(6);
  for (int I = 0; I < 40000; ++I)
    T.append({static_cast<uint64_t>(R.nextInRange(8, 2000)), 32, C, 1});
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);
  ArenaSimResult Arena = simulateArena(T, DB, 5.0);
  BaselineSimResult FF = simulateFirstFit(T);
  EXPECT_LT(Arena.InstrLen4.total(), FF.Instr.total());
  EXPECT_LT(Arena.InstrLen4.Free, 15.0); // Count decrement is cheap.
}

TEST(SimTest, PollutionDegradesArenaAllocation) {
  // The paper's CFRAC case: train a site as short-lived, then feed a test
  // trace where it allocates immortal objects.  The arenas fill with live
  // objects and the allocator degenerates.
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace Train;
  uint32_t C = Train.internChain(CallChain{1, 2});
  Rng R(7);
  for (int I = 0; I < 20000; ++I)
    Train.append({static_cast<uint64_t>(R.nextInRange(8, 2000)), 32, C, 1});
  SiteDatabase DB = trainDatabase(profileTrace(Train, Policy), Policy);

  AllocationTrace Test;
  uint32_t C2 = Test.internChain(CallChain{1, 2});
  for (int I = 0; I < 20000; ++I) {
    bool Error = R.nextBool(0.05);
    Test.append({Error ? NeverFreed
                       : static_cast<uint64_t>(R.nextInRange(8, 2000)),
                 32, C2, 1});
  }
  ArenaSimResult Polluted = simulateArena(Test, DB, 5.0);
  EXPECT_GT(Polluted.Arena.FallbackAllocs, 10000u);
  EXPECT_LT(Polluted.arenaAllocPercent(), 20.0);
}

TEST(SimTest, HeapSizeReportedInGrowthGranularity) {
  AllocationTrace T = churnTrace(8, 5000);
  BaselineSimResult R = simulateFirstFit(T);
  EXPECT_EQ(R.MaxHeapBytes % 8192, 0u);
}

//===----------------------------------------------------------------------===//
// Differential tests: the compiled event schedule and the simulators built
// on it against the replayTrace reference oracle.
//===----------------------------------------------------------------------===//

namespace {

/// One oracle event, as replayTrace hands it to a consumer.
struct OracleEvent {
  bool Free;
  uint64_t Id;
  uint64_t Clock;

  bool operator==(const OracleEvent &Other) const = default;
};

/// Records the oracle's exact event stream.
class EventLogger : public TraceConsumer {
public:
  void onAlloc(uint64_t Id, const AllocRecord &, uint64_t Clock) override {
    Events.push_back({false, Id, Clock});
  }
  void onFree(uint64_t Id, const AllocRecord &, uint64_t Clock) override {
    Events.push_back({true, Id, Clock});
  }
  void onEnd(uint64_t Clock) override { EndClock = Clock; }

  std::vector<OracleEvent> Events;
  uint64_t EndClock = 0;
};

/// Asserts the compiled schedule of \p Trace is event-for-event identical
/// (tag, id, clock) to the replayTrace oracle.
void expectScheduleMatchesOracle(const AllocationTrace &Trace) {
  EventLogger Oracle;
  replayTrace(Trace, Oracle);
  EventSchedule Schedule(Trace);
  ASSERT_EQ(Schedule.size(), Oracle.Events.size());
  for (size_t E = 0; E < Schedule.size(); ++E) {
    const OracleEvent &Expected = Oracle.Events[E];
    ASSERT_EQ(Schedule.isFree(E), Expected.Free) << "event " << E;
    ASSERT_EQ(Schedule.objectId(E), Expected.Id) << "event " << E;
    ASSERT_EQ(Schedule.clock(E), Expected.Clock) << "event " << E;
  }
  EXPECT_EQ(Schedule.endClock(), Oracle.EndClock);
}

/// A fuzz trace: random sizes, heavy death-clock collisions (sizes and
/// lifetimes share small multiples so tie-break order matters), and a
/// sprinkling of never-freed objects.
AllocationTrace fuzzTrace(uint64_t Seed, size_t Objects) {
  AllocationTrace T;
  Rng R(Seed);
  uint32_t Chains[3] = {T.internChain(CallChain{1}),
                        T.internChain(CallChain{1, 2}),
                        T.internChain(CallChain{1, 2, 3})};
  for (size_t I = 0; I < Objects; ++I) {
    AllocRecord Record;
    Record.Size = static_cast<uint32_t>(16 * R.nextInRange(1, 8));
    Record.Lifetime = R.nextBool(0.1)
                          ? NeverFreed
                          : static_cast<uint64_t>(16 * R.nextInRange(0, 500));
    Record.ChainIndex = Chains[R.nextInRange(0, 2)];
    Record.Refs = 1;
    T.append(Record);
  }
  return T;
}

/// Oracle-driven baseline replay: the pre-compilation reference path,
/// calling the allocator in replayTrace's event order.
template <typename AllocatorT>
std::pair<uint64_t, uint64_t> oracleBaseline(const AllocationTrace &Trace,
                                             AllocatorT &Allocator) {
  class Consumer : public TraceConsumer {
  public:
    Consumer(AllocatorT &Allocator, size_t Objects) : Allocator(Allocator) {
      Addresses.resize(Objects);
    }
    void onAlloc(uint64_t Id, const AllocRecord &Record, uint64_t) override {
      Addresses[Id] = Allocator.allocate(Record.Size);
      raisePeak(MaxLive, Allocator.liveBytes());
    }
    void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
      Allocator.free(Addresses[Id]);
    }
    AllocatorT &Allocator;
    std::vector<uint64_t> Addresses;
    uint64_t MaxLive = 0;
  };
  Consumer C(Allocator, Trace.size());
  replayTrace(Trace, C);
  return {Allocator.maxHeapBytes(), C.MaxLive};
}

} // namespace

TEST(CompiledTraceTest, ScheduleMatchesOracleOnPaperWorkloads) {
  for (const ProgramModel &Model : allPrograms()) {
    SCOPED_TRACE(Model.Name);
    FunctionRegistry Registry;
    RunOptions Run;
    Run.Scale = 0.05;
    Run.Seed = 0x1993;
    Run.Kind = RunKind::Test;
    AllocationTrace Trace = runWorkload(Model, Run, Registry);
    expectScheduleMatchesOracle(Trace);
  }
}

TEST(CompiledTraceTest, ScheduleMatchesOracleOnFuzzTraces) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    SCOPED_TRACE(Seed);
    expectScheduleMatchesOracle(fuzzTrace(Seed, 4000));
  }
  // Degenerate shapes: empty, single never-freed, all dying at once.
  expectScheduleMatchesOracle(AllocationTrace());
  {
    AllocationTrace T;
    uint32_t C = T.internChain(CallChain{1});
    T.append({NeverFreed, 64, C, 1});
    expectScheduleMatchesOracle(T);
  }
  {
    AllocationTrace T;
    uint32_t C = T.internChain(CallChain{1});
    for (int I = 0; I < 100; ++I)
      T.append({0, 16, C, 1}); // Every object dies before the next birth.
    expectScheduleMatchesOracle(T);
  }
}

TEST(CompiledTraceTest, BaselineCountersMatchOracleReplay) {
  // flat-ff and bsd: the compiled simulators must make exactly the
  // allocator calls the oracle-driven replay makes.
  for (uint64_t Seed = 11; Seed <= 13; ++Seed) {
    SCOPED_TRACE(Seed);
    AllocationTrace T = fuzzTrace(Seed, 6000);
    CompiledTrace Compiled(T);

    FirstFitAllocator OracleFF;
    auto [FFHeap, FFLive] = oracleBaseline(T, OracleFF);
    BaselineSimResult FF = simulateFirstFit(Compiled);
    EXPECT_EQ(FF.FirstFit, OracleFF.counters());
    EXPECT_EQ(FF.MaxHeapBytes, FFHeap);
    EXPECT_EQ(FF.MaxLiveBytes, FFLive);

    BsdAllocator OracleBsd;
    auto [BsdHeap, BsdLive] = oracleBaseline(T, OracleBsd);
    BaselineSimResult Bsd = simulateBsd(Compiled);
    EXPECT_EQ(Bsd.Bsd, OracleBsd.counters());
    EXPECT_EQ(Bsd.MaxHeapBytes, BsdHeap);
    EXPECT_EQ(Bsd.MaxLiveBytes, BsdLive);
  }
}

TEST(CompiledTraceTest, ArenaCountersMatchOracleReplay) {
  // The arena simulator's pre-resolved PredictedShort bits against an
  // oracle replay that re-derives every site key and probes the database
  // per event — the path the compiled artifacts replaced.
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  for (uint64_t Seed = 21; Seed <= 23; ++Seed) {
    SCOPED_TRACE(Seed);
    AllocationTrace T = churnTrace(Seed, 20000);
    SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);

    class Consumer : public TraceConsumer {
    public:
      Consumer(ArenaAllocator &Allocator, const AllocationTrace &Trace,
               const SiteDatabase &DB, const SiteKeyPolicy &Policy)
          : Allocator(Allocator), Trace(Trace), DB(DB), Policy(Policy) {
        Addresses.resize(Trace.size());
      }
      void onAlloc(uint64_t Id, const AllocRecord &Record,
                   uint64_t) override {
        bool Predicted = DB.contains(siteKey(
            Policy, Trace.chain(Record.ChainIndex), Record.Size,
            Record.TypeId));
        Addresses[Id] = Allocator.allocate(Record.Size, Predicted);
      }
      void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
        Allocator.free(Addresses[Id]);
      }
      ArenaAllocator &Allocator;
      const AllocationTrace &Trace;
      const SiteDatabase &DB;
      const SiteKeyPolicy &Policy;
      std::vector<uint64_t> Addresses;
    };
    ArenaAllocator Oracle;
    Consumer C(Oracle, T, DB, Policy);
    replayTrace(T, C);

    ArenaSimResult R = simulateArena(CompiledTrace(T, Policy), DB, 5.0);
    EXPECT_EQ(R.Arena, Oracle.counters());
    EXPECT_EQ(R.MaxHeapBytes, Oracle.maxHeapBytes());
  }
}

TEST(CompiledTraceTest, MultiArenaCountersMatchOracleReplay) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  const std::vector<uint64_t> Thresholds = {16 * 1024, 32 * 1024};
  MultiArenaAllocator::Config Config;
  Config.Bands = {{32 * 1024, 8}, {32 * 1024, 8}};
  for (uint64_t Seed = 31; Seed <= 33; ++Seed) {
    SCOPED_TRACE(Seed);
    AllocationTrace T = churnTrace(Seed, 20000);
    ClassDatabase DB =
        trainClassDatabase(profileTrace(T, Policy), Policy, Thresholds);

    class Consumer : public TraceConsumer {
    public:
      Consumer(MultiArenaAllocator &Allocator, const AllocationTrace &Trace,
               const ClassDatabase &DB, const SiteKeyPolicy &Policy)
          : Allocator(Allocator), Trace(Trace), DB(DB), Policy(Policy) {
        Addresses.resize(Trace.size());
      }
      void onAlloc(uint64_t Id, const AllocRecord &Record,
                   uint64_t) override {
        LifetimeClass Band = DB.classify(siteKey(
            Policy, Trace.chain(Record.ChainIndex), Record.Size,
            Record.TypeId));
        Addresses[Id] = Allocator.allocate(Record.Size, Band);
      }
      void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
        Allocator.free(Addresses[Id]);
      }
      MultiArenaAllocator &Allocator;
      const AllocationTrace &Trace;
      const ClassDatabase &DB;
      const SiteKeyPolicy &Policy;
      std::vector<uint64_t> Addresses;
    };
    MultiArenaAllocator Oracle(Config);
    Consumer C(Oracle, T, DB, Policy);
    replayTrace(T, C);

    MultiArenaSimResult R =
        simulateMultiArena(CompiledTrace(T, Policy), DB, Config);
    EXPECT_EQ(R.MaxHeapBytes, Oracle.maxHeapBytes());
    ASSERT_EQ(R.PerBand.size(), Oracle.bands());
    for (size_t Band = 0; Band < Oracle.bands(); ++Band) {
      const auto &Got = R.PerBand[Band];
      const auto &Want = Oracle.bandCounters(Band);
      EXPECT_EQ(Got.Allocs, Want.Allocs) << "band " << Band;
      EXPECT_EQ(Got.Bytes, Want.Bytes) << "band " << Band;
      EXPECT_EQ(Got.Frees, Want.Frees) << "band " << Band;
      EXPECT_EQ(Got.ScanSteps, Want.ScanSteps) << "band " << Band;
      EXPECT_EQ(Got.Resets, Want.Resets) << "band " << Band;
      EXPECT_EQ(Got.Fallbacks, Want.Fallbacks) << "band " << Band;
    }
    EXPECT_EQ(R.GeneralAllocs, Oracle.generalAllocs());
    EXPECT_EQ(R.GeneralBytes, Oracle.generalBytes());
    EXPECT_EQ(R.General, Oracle.general().counters());
  }
}

TEST(CompiledTraceTest, InstrumentedReplayIdenticalToPlainAndToWrapper) {
  // Telemetry must observe without perturbing: the instrumented consumer's
  // counters equal the plain consumer's, the AllocationTrace convenience
  // overload equals the explicit compiled path, and the telemetry
  // registries of two instrumented runs are byte-identical.
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace T = churnTrace(42, 30000);
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);
  CompiledTrace Compiled(T, Policy);

  ArenaSimResult Plain = simulateArena(Compiled, DB, 5.0);

  StatsRegistry RegistryA, RegistryB;
  SimTelemetry TelemetryA, TelemetryB;
  TelemetryA.Registry = &RegistryA;
  TelemetryB.Registry = &RegistryB;
  ArenaSimResult Instrumented =
      simulateArena(Compiled, DB, 5.0, CostModel(), ArenaAllocator::Config(),
                    &TelemetryA);
  ArenaSimResult Wrapped = simulateArena(
      T, DB, 5.0, CostModel(), ArenaAllocator::Config(), &TelemetryB);

  EXPECT_EQ(Plain.Arena, Instrumented.Arena);
  EXPECT_EQ(Plain.General, Instrumented.General);
  EXPECT_EQ(Plain.MaxHeapBytes, Instrumented.MaxHeapBytes);
  EXPECT_EQ(Plain.MaxLiveBytes, Instrumented.MaxLiveBytes);
  EXPECT_EQ(Plain.Arena, Wrapped.Arena);
  EXPECT_EQ(TelemetryA.Outcomes, TelemetryB.Outcomes);

  std::string JsonA, JsonB;
  RegistryA.writeJson(JsonA, "");
  RegistryB.writeJson(JsonB, "");
  EXPECT_EQ(JsonA, JsonB);

  // The pre-resolved outcomes against a direct per-record recomputation.
  PredictionCounts Expected;
  for (const AllocRecord &Record : T.records()) {
    bool Predicted = DB.contains(siteKey(
        Policy, T.chain(Record.ChainIndex), Record.Size, Record.TypeId));
    Expected.add(Predicted, Record.Lifetime <= DB.threshold());
  }
  EXPECT_EQ(TelemetryA.Outcomes, Expected);
}

TEST(CompiledTraceTest, SharedScheduleIsStableAcrossConcurrentReplays) {
  // One compiled trace, many simultaneous replays: every thread must see
  // the same immutable schedule and produce the serial result.
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace T = churnTrace(77, 30000);
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);
  CompiledTrace Compiled(T, Policy);
  ArenaSimResult Serial = simulateArena(Compiled, DB, 5.0);

  ThreadPool Pool(4);
  std::vector<ArenaSimResult> Results(8);
  parallelForIndex(Pool, Results.size(), [&](size_t Index) {
    Results[Index] = simulateArena(Compiled, DB, 5.0);
  });
  for (const ArenaSimResult &R : Results) {
    EXPECT_EQ(R.Arena, Serial.Arena);
    EXPECT_EQ(R.General, Serial.General);
    EXPECT_EQ(R.MaxHeapBytes, Serial.MaxHeapBytes);
    EXPECT_EQ(R.MaxLiveBytes, Serial.MaxLiveBytes);
  }
}
