//===- tests/sim_test.cpp - Trace simulator tests --------------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sim/TraceSimulator.h"
#include "support/Random.h"

#include "gtest/gtest.h"

using namespace lifepred;

namespace {

/// A trace of short-lived objects from one site plus rare long-lived ones
/// from another.
AllocationTrace churnTrace(uint64_t Seed, size_t Objects) {
  AllocationTrace T;
  Rng R(Seed);
  uint32_t ShortChain = T.internChain(CallChain{1, 2});
  uint32_t LongChain = T.internChain(CallChain{1, 3});
  for (size_t I = 0; I < Objects; ++I) {
    if (R.nextBool(0.95))
      T.append({static_cast<uint64_t>(R.nextInRange(8, 2000)), 32,
                ShortChain, 1});
    else
      T.append({static_cast<uint64_t>(R.nextInRange(100000, 400000)), 64,
                LongChain, 1});
  }
  return T;
}

} // namespace

TEST(SimTest, FirstFitBaselineProducesSaneMetrics) {
  AllocationTrace T = churnTrace(1, 20000);
  BaselineSimResult R = simulateFirstFit(T);
  EXPECT_GT(R.MaxHeapBytes, 0u);
  EXPECT_GE(R.MaxHeapBytes, R.MaxLiveBytes);
  EXPECT_EQ(R.FirstFit.Allocs, 20000u);
  EXPECT_EQ(R.FirstFit.Frees, 20000u);
  EXPECT_GT(R.Instr.Alloc, 0.0);
  EXPECT_GT(R.Instr.Free, 0.0);
}

TEST(SimTest, BsdBaselineFasterButFatterThanFirstFit) {
  AllocationTrace T = churnTrace(2, 20000);
  BaselineSimResult FF = simulateFirstFit(T);
  BaselineSimResult Bsd = simulateBsd(T);
  // The paper's Table 9 relationship: BSD free is far cheaper.
  EXPECT_LT(Bsd.Instr.Free, FF.Instr.Free);
  EXPECT_LT(Bsd.Instr.total(), FF.Instr.total());
}

TEST(SimTest, ArenaWithEmptyDatabaseDegeneratesToFirstFit) {
  // The paper: "the first-fit algorithm becomes the degenerate case of an
  // arena allocator that allocates no objects in arenas."
  AllocationTrace T = churnTrace(3, 20000);
  SiteDatabase Empty(SiteKeyPolicy::completeChain(), 32768);
  ArenaSimResult Arena = simulateArena(T, Empty, 5.0);
  BaselineSimResult FF = simulateFirstFit(T);
  EXPECT_EQ(Arena.Arena.ArenaAllocs, 0u);
  EXPECT_EQ(Arena.Arena.GeneralAllocs, 20000u);
  // Identical general-heap behaviour, plus the 64 KB arena area.
  EXPECT_EQ(Arena.MaxHeapBytes, FF.MaxHeapBytes + 64 * 1024);
  EXPECT_EQ(Arena.General.SearchSteps, FF.FirstFit.SearchSteps);
}

TEST(SimTest, TrainedDatabaseSendsShortLivedToArenas) {
  AllocationTrace T = churnTrace(4, 40000);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);
  ArenaSimResult R = simulateArena(T, DB, 5.0);
  // ~95% of objects are short-lived and their site qualifies.
  EXPECT_GT(R.arenaAllocPercent(), 90.0);
  EXPECT_EQ(R.Arena.ArenaFrees, R.Arena.ArenaAllocs);
}

TEST(SimTest, ArenaCceCostExceedsLen4ForManyCallsPerAlloc) {
  AllocationTrace T = churnTrace(5, 20000);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);
  ArenaSimResult R = simulateArena(T, DB, /*CallsPerAlloc=*/20.0);
  EXPECT_GT(R.InstrCce.Alloc, R.InstrLen4.Alloc);
  EXPECT_DOUBLE_EQ(R.InstrCce.Free, R.InstrLen4.Free);
}

TEST(SimTest, SuccessfulPredictionBeatsFirstFitCpuCost) {
  // The paper's GAWK case: near-total prediction makes arena allocation
  // far cheaper than first fit.
  AllocationTrace T;
  uint32_t C = T.internChain(CallChain{1, 2});
  Rng R(6);
  for (int I = 0; I < 40000; ++I)
    T.append({static_cast<uint64_t>(R.nextInRange(8, 2000)), 32, C, 1});
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);
  ArenaSimResult Arena = simulateArena(T, DB, 5.0);
  BaselineSimResult FF = simulateFirstFit(T);
  EXPECT_LT(Arena.InstrLen4.total(), FF.Instr.total());
  EXPECT_LT(Arena.InstrLen4.Free, 15.0); // Count decrement is cheap.
}

TEST(SimTest, PollutionDegradesArenaAllocation) {
  // The paper's CFRAC case: train a site as short-lived, then feed a test
  // trace where it allocates immortal objects.  The arenas fill with live
  // objects and the allocator degenerates.
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace Train;
  uint32_t C = Train.internChain(CallChain{1, 2});
  Rng R(7);
  for (int I = 0; I < 20000; ++I)
    Train.append({static_cast<uint64_t>(R.nextInRange(8, 2000)), 32, C, 1});
  SiteDatabase DB = trainDatabase(profileTrace(Train, Policy), Policy);

  AllocationTrace Test;
  uint32_t C2 = Test.internChain(CallChain{1, 2});
  for (int I = 0; I < 20000; ++I) {
    bool Error = R.nextBool(0.05);
    Test.append({Error ? NeverFreed
                       : static_cast<uint64_t>(R.nextInRange(8, 2000)),
                 32, C2, 1});
  }
  ArenaSimResult Polluted = simulateArena(Test, DB, 5.0);
  EXPECT_GT(Polluted.Arena.FallbackAllocs, 10000u);
  EXPECT_LT(Polluted.arenaAllocPercent(), 20.0);
}

TEST(SimTest, HeapSizeReportedInGrowthGranularity) {
  AllocationTrace T = churnTrace(8, 5000);
  BaselineSimResult R = simulateFirstFit(T);
  EXPECT_EQ(R.MaxHeapBytes % 8192, 0u);
}
