//===- tests/support_test.cpp - Support library tests ----------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/Hashing.h"
#include "support/MathExtras.h"
#include "support/Random.h"
#include "support/TableFormatter.h"

#include "gtest/gtest.h"

#include <cmath>
#include <set>
#include <sstream>

using namespace lifepred;

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 10000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng R(9);
  for (uint64_t Bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int I = 0; I < 1000; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(RngTest, NextBelowCoversSmallRange) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(R.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(13);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 5000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng R(17);
  double Sum = 0, SumSq = 0;
  const int N = 50000;
  for (int I = 0; I < N; ++I) {
    double G = R.nextGaussian();
    Sum += G;
    SumSq += G * G;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.03);
  EXPECT_NEAR(Var, 1.0, 0.05);
}

TEST(RngTest, WeightedSamplingMatchesWeights) {
  Rng R(19);
  std::vector<double> Weights = {1.0, 3.0, 6.0};
  std::vector<int> Counts(3, 0);
  const int N = 60000;
  for (int I = 0; I < N; ++I)
    ++Counts[R.nextWeighted(Weights)];
  EXPECT_NEAR(Counts[0] / double(N), 0.1, 0.01);
  EXPECT_NEAR(Counts[1] / double(N), 0.3, 0.015);
  EXPECT_NEAR(Counts[2] / double(N), 0.6, 0.015);
}

TEST(RngTest, ZeroWeightNeverSampled) {
  Rng R(23);
  std::vector<double> Weights = {0.0, 1.0, 0.0};
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(R.nextWeighted(Weights), 1u);
}

TEST(RngTest, ForkedStreamsIndependent) {
  Rng A(31);
  Rng B = A.fork();
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 2);
}

TEST(HashingTest, FnvMatchesKnownVector) {
  // FNV-1a of "a" is a published constant.
  EXPECT_EQ(hashBytes("a", 1), 0xaf63dc4c8601ec8cULL);
}

TEST(HashingTest, HashBytesDistinguishesContent) {
  EXPECT_NE(hashBytes("abc", 3), hashBytes("abd", 3));
  EXPECT_NE(hashBytes("abc", 3), hashBytes("ab", 2));
}

TEST(HashingTest, HashCombineOrderSensitive) {
  uint64_t A = hashCombine(hashCombine(FnvOffsetBasis, 1), 2);
  uint64_t B = hashCombine(hashCombine(FnvOffsetBasis, 2), 1);
  EXPECT_NE(A, B);
}

TEST(MathExtrasTest, PowerOfTwo) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(4096));
  EXPECT_FALSE(isPowerOf2(4097));
}

TEST(MathExtrasTest, AlignTo) {
  EXPECT_EQ(alignTo(0, 8), 0u);
  EXPECT_EQ(alignTo(1, 8), 8u);
  EXPECT_EQ(alignTo(8, 8), 8u);
  EXPECT_EQ(alignTo(9, 8), 16u);
  EXPECT_EQ(alignTo(13, 4), 16u);
}

TEST(MathExtrasTest, AlignDown) {
  EXPECT_EQ(alignDown(9, 8), 8u);
  EXPECT_EQ(alignDown(8, 8), 8u);
  EXPECT_EQ(alignDown(7, 8), 0u);
}

TEST(MathExtrasTest, Log2CeilAndNextPowerOf2) {
  EXPECT_EQ(log2Ceil(1), 0u);
  EXPECT_EQ(log2Ceil(2), 1u);
  EXPECT_EQ(log2Ceil(3), 2u);
  EXPECT_EQ(log2Ceil(4096), 12u);
  EXPECT_EQ(nextPowerOf2(5), 8u);
  EXPECT_EQ(nextPowerOf2(8), 8u);
}

TEST(MathExtrasTest, Percent) {
  EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
  EXPECT_DOUBLE_EQ(percent(1, 0), 0.0);
}

TEST(TableFormatterTest, AlignsAndSeparatesThousands) {
  TableFormatter Table({"Name", "Value"});
  Table.beginRow();
  Table.addCell("row");
  Table.addInt(1234567);
  std::ostringstream OS;
  Table.print(OS);
  EXPECT_NE(OS.str().find("1,234,567"), std::string::npos);
  EXPECT_NE(OS.str().find("Name"), std::string::npos);
}

TEST(TableFormatterTest, NegativeNumbers) {
  EXPECT_EQ(TableFormatter::withThousands(-1234), "-1,234");
  EXPECT_EQ(TableFormatter::withThousands(0), "0");
}

TEST(CommandLineTest, ParsesFlagsAndPositional) {
  const char *Argv[] = {"prog", "--scale=0.5", "--verbose", "input.txt",
                        "--seed=42"};
  CommandLine Cl(5, Argv);
  EXPECT_TRUE(Cl.has("verbose"));
  EXPECT_FALSE(Cl.has("quiet"));
  EXPECT_DOUBLE_EQ(Cl.getDouble("scale", 1.0), 0.5);
  EXPECT_EQ(Cl.getInt("seed", 0), 42);
  ASSERT_EQ(Cl.positional().size(), 1u);
  EXPECT_EQ(Cl.positional()[0], "input.txt");
}

TEST(CommandLineTest, MalformedValuesFallBackToDefault) {
  const char *Argv[] = {"prog", "--seed=abc"};
  CommandLine Cl(2, Argv);
  EXPECT_EQ(Cl.getInt("seed", 7), 7);
  EXPECT_EQ(Cl.getString("seed", ""), "abc");
}
