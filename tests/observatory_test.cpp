//===- tests/observatory_test.cpp - Heap observatory tests -----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Covers the heap observatory: FragmentationProbe arithmetic and golden
// JSON, HeapHeatmap cell placement / merge / clipping and golden JSON, a
// hand-built ten-op trace replayed through first fit with hand-computed
// expectations, jobs-invariance of every non-timing observatory key
// (thread pools of 1, 2, and 8 produce byte-identical filtered registry
// output), streamed-vs-in-memory probe equality, the LatencyRecorder
// sampling schedule and its timing-key classification, and the
// perf-trajectory ledger round trip.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sim/SimTelemetry.h"
#include "sim/StreamReplay.h"
#include "sim/TraceSimulator.h"
#include "support/Json.h"
#include "support/Random.h"
#include "support/ThreadPool.h"
#include "telemetry/FragmentationProbe.h"
#include "telemetry/HeapHeatmap.h"
#include "telemetry/LatencyRecorder.h"
#include "telemetry/PerfLedger.h"
#include "telemetry/ReportDiff.h"
#include "telemetry/StatsRegistry.h"
#include "trace/ScheduleFile.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace lifepred;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

/// Serializes every non-timing key of \p Registry — the byte-identical
/// surface the jobs-invariance guarantee covers.  Timing keys (latency)
/// carry wall-clock values and are excluded by the same classifier
/// bench_compare uses.
std::string valueKeysOnly(const StatsRegistry &Registry) {
  std::string Out;
  for (const auto &[Key, Value] : Registry.counters())
    if (!isTimingMetric(Key))
      Out += Key + "=" + std::to_string(Value) + "\n";
  for (const auto &[Key, Value] : Registry.gauges())
    if (!isTimingMetric(Key))
      Out += Key + "=" + std::to_string(Value) + "\n";
  for (const auto &[Key, Hist] : Registry.histograms()) {
    if (isTimingMetric(Key))
      continue;
    Out += Key + ":";
    for (unsigned B = 0; B < Log2Histogram::BucketCount; ++B)
      if (Hist.bucketCount(B) != 0)
        Out += " [" + std::to_string(B) + "]=" +
               std::to_string(Hist.bucketCount(B));
    Out += "\n";
  }
  return Out;
}

/// A synthetic trace with mixed sizes and lifetimes; \p Seed varies the
/// shape so multi-program fan-outs exercise distinct heaps.
AllocationTrace makeSyntheticTrace(uint64_t Seed, size_t Objects) {
  AllocationTrace T;
  Rng R(Seed);
  uint32_t Short = T.internChain(CallChain{1, 2});
  uint32_t Long = T.internChain(CallChain{1, 3});
  for (size_t I = 0; I < Objects; ++I) {
    if (R.next() % 4 != 0)
      T.append({static_cast<uint64_t>(R.nextInRange(64, 4000)), 32, Short,
                1});
    else
      T.append({static_cast<uint64_t>(R.nextInRange(20000, 200000)),
                static_cast<uint32_t>(16 << (R.next() % 5)), Long, 2});
  }
  return T;
}

} // namespace

//===----------------------------------------------------------------------===//
// FragmentationProbe
//===----------------------------------------------------------------------===//

TEST(FragmentationProbeTest, HandComputedFragIndex) {
  FragmentationProbe Probe(1000);
  EXPECT_TRUE(Probe.due(0)) << "first sample must fire immediately";

  // Free spans of 100 and 300 bytes: total 400, largest 300, so the
  // external-fragmentation index is (400 - 300) / 400 = 25% = 250000 ppm.
  Probe.beginSample(/*Clock=*/0, /*HeapBytes=*/1000, /*LiveBytes=*/600);
  Probe.addFreeSpan(100);
  Probe.addFreeSpan(300);
  Probe.addLiveSpan(600);
  Probe.endSample();
  EXPECT_EQ(Probe.sampleCount(), 1u);
  EXPECT_EQ(Probe.lastFragIndexPpm(), 250000u);
  EXPECT_EQ(Probe.maxFragIndexPpm(), 250000u);
  EXPECT_EQ(Probe.largestFreeBlock(), 300u);

  // Clock 0 closed the [0, 1000) window; the next boundary is 1000.
  EXPECT_FALSE(Probe.due(999));
  EXPECT_TRUE(Probe.due(1000));

  // A single free span is zero external fragmentation by definition, and
  // peaks (max index, largest free) are monotone.
  Probe.beginSample(1000, 1000, 0);
  Probe.addFreeSpan(1000);
  Probe.endSample();
  EXPECT_EQ(Probe.lastFragIndexPpm(), 0u);
  EXPECT_EQ(Probe.maxFragIndexPpm(), 250000u);
  EXPECT_EQ(Probe.largestFreeBlock(), 1000u);

  // No free memory at all also reads as zero, not a division crash.
  Probe.beginSample(2000, 1000, 1000);
  Probe.addLiveSpan(1000);
  Probe.endSample();
  EXPECT_EQ(Probe.lastFragIndexPpm(), 0u);
}

TEST(FragmentationProbeTest, BulkSpansMatchLoopedSpans) {
  FragmentationProbe Bulk(1), Loop(1);
  Bulk.beginSample(0, 0, 0);
  Bulk.addFreeSpans(128, 50);
  Bulk.addLiveSpans(24, 200);
  Bulk.endSample();
  Loop.beginSample(0, 0, 0);
  for (int I = 0; I < 50; ++I)
    Loop.addFreeSpan(128);
  for (int I = 0; I < 200; ++I)
    Loop.addLiveSpan(24);
  Loop.endSample();
  EXPECT_EQ(Bulk.freeSpans(), Loop.freeSpans());
  EXPECT_EQ(Bulk.liveSpans(), Loop.liveSpans());
  EXPECT_EQ(Bulk.lastFragIndexPpm(), Loop.lastFragIndexPpm());
  EXPECT_EQ(Bulk.largestFreeBlock(), Loop.largestFreeBlock());
}

TEST(FragmentationProbeTest, DriftEstimatorUsesBackHalf) {
  // Heap doubles in the back half: samples at clocks 0/500/1000 with heap
  // 100/100/300.  The midpoint is 500, so the window is [500, 1000] and
  // growth is 200 bytes over 500 byte-clock.
  FragmentationProbe Probe(500);
  for (auto [Clock, Heap] :
       {std::pair<uint64_t, uint64_t>{0, 100}, {500, 100}, {1000, 300}}) {
    Probe.beginSample(Clock, Heap, 0);
    Probe.endSample();
  }
  FragmentationProbe::Drift D = Probe.driftEstimate();
  EXPECT_EQ(D.GrowthBytes, 200u);
  EXPECT_EQ(D.ShrinkBytes, 0u);
  EXPECT_EQ(D.WindowClock, 500u);

  // A shrinking heap reports on the shrink side instead.
  FragmentationProbe Shrink(500);
  for (auto [Clock, Heap] :
       {std::pair<uint64_t, uint64_t>{0, 300}, {500, 300}, {1000, 50}}) {
    Shrink.beginSample(Clock, Heap, 0);
    Shrink.endSample();
  }
  D = Shrink.driftEstimate();
  EXPECT_EQ(D.GrowthBytes, 0u);
  EXPECT_EQ(D.ShrinkBytes, 250u);
}

TEST(FragmentationProbeTest, GoldenJson) {
  FragmentationProbe Probe(4096);
  Probe.beginSample(0, 1024, 600);
  Probe.addFreeSpan(100);
  Probe.addFreeSpan(300);
  Probe.addLiveSpan(600);
  Probe.endSample();

  std::string Json;
  Probe.writeJson(Json, "");
  std::optional<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc && Doc->isObject()) << Json;
  EXPECT_EQ(Doc->find("stride_bytes")->number(), 4096.0);
  EXPECT_EQ(Doc->find("samples")->number(), 1.0);
  EXPECT_EQ(Doc->find("frag_index_ppm")->number(), 250000.0);
  EXPECT_EQ(Doc->find("max_frag_index_ppm")->number(), 250000.0);
  EXPECT_EQ(Doc->find("largest_free_block")->number(), 300.0);
  EXPECT_EQ(Doc->find("peak_free_bytes")->number(), 400.0);

  // Histograms serialize sparsely as [bucket_low, count] pairs: 100 lands
  // in [64, 127], 300 in [256, 511], 600 in [512, 1023].
  const JsonValue *Free = Doc->find("free_span_bytes");
  ASSERT_TRUE(Free && Free->isObject());
  EXPECT_EQ(Free->find("count")->number(), 2.0);
  EXPECT_EQ(Free->find("sum")->number(), 400.0);
  const JsonValue *Buckets = Free->find("buckets");
  ASSERT_TRUE(Buckets && Buckets->isArray());
  ASSERT_EQ(Buckets->array().size(), 2u);
  EXPECT_EQ(Buckets->array()[0].array()[0].number(), 64.0);
  EXPECT_EQ(Buckets->array()[0].array()[1].number(), 1.0);
  EXPECT_EQ(Buckets->array()[1].array()[0].number(), 256.0);
  EXPECT_EQ(Buckets->array()[1].array()[1].number(), 1.0);
  const JsonValue *Live = Doc->find("live_span_bytes");
  ASSERT_TRUE(Live && Live->isObject());
  EXPECT_EQ(Live->find("count")->number(), 1.0);
  EXPECT_EQ(Live->find("sum")->number(), 600.0);
}

TEST(FragmentationProbeTest, ExportKeysAreValueClassified) {
  FragmentationProbe Probe(1);
  Probe.beginSample(0, 100, 0);
  Probe.addFreeSpan(100);
  Probe.endSample();
  StatsRegistry Registry;
  Probe.exportTelemetry(Registry, "firstfit.");
  EXPECT_EQ(Registry.counters().at("firstfit.frag.samples"), 1u);
  EXPECT_EQ(Registry.gauges().at("firstfit.frag.largest_free_block"), 100u);
  for (const auto &[Key, Value] : Registry.counters())
    EXPECT_FALSE(isTimingMetric(Key)) << Key;
  for (const auto &[Key, Value] : Registry.gauges())
    EXPECT_FALSE(isTimingMetric(Key)) << Key;
  for (const auto &[Key, Hist] : Registry.histograms())
    EXPECT_FALSE(isTimingMetric(Key)) << Key;
}

//===----------------------------------------------------------------------===//
// HeapHeatmap
//===----------------------------------------------------------------------===//

TEST(HeapHeatmapTest, CellPlacementAndRowSplit) {
  HeapHeatmap::Config Config;
  Config.BytesPerRow = 64; // Minimum row width, power of two.
  Config.ClockStride = 100;
  HeapHeatmap Map(Config);

  // A 40-byte span at address 40 straddles the 64-byte row boundary:
  // 24 bytes land in row [0, 64), 16 bytes in row [64, 128).
  EXPECT_TRUE(Map.due(0));
  Map.beginColumn(0);
  Map.addSpan(40, 40);
  Map.endColumn();
  EXPECT_EQ(Map.rowCount(), 2u);
  EXPECT_EQ(Map.cellBytes(0, 0), 24u);
  EXPECT_EQ(Map.cellBytes(64, 0), 16u);
  EXPECT_EQ(Map.peakCellBytes(), 24u);
  EXPECT_EQ(Map.clippedBytes(), 0u);

  // Clock 250 lands in column 2; column 0's cells are untouched.
  EXPECT_FALSE(Map.due(99));
  EXPECT_TRUE(Map.due(100));
  Map.beginColumn(250);
  Map.addSpan(0, 10);
  Map.endColumn();
  EXPECT_EQ(Map.cellBytes(0, 250), 10u);
  EXPECT_EQ(Map.cellBytes(0, 0), 24u);
  EXPECT_EQ(Map.occupiedCells(), 3u);
}

TEST(HeapHeatmapTest, MergeAddsCellwise) {
  HeapHeatmap::Config Config;
  Config.BytesPerRow = 64;
  Config.ClockStride = 100;
  HeapHeatmap A(Config), B(Config);
  A.beginColumn(0);
  A.addSpan(0, 10);
  A.endColumn();
  B.beginColumn(0);
  B.addSpan(0, 5);
  B.endColumn();
  B.beginColumn(100);
  B.addSpan(64, 7);
  B.endColumn();
  A.merge(B);
  EXPECT_EQ(A.cellBytes(0, 0), 15u);
  EXPECT_EQ(A.cellBytes(64, 100), 7u);
  EXPECT_EQ(A.occupiedCells(), 2u);
}

TEST(HeapHeatmapTest, RowCapClipsAndAccounts) {
  HeapHeatmap::Config Config;
  Config.BytesPerRow = 64;
  Config.MaxRows = 1;
  HeapHeatmap Map(Config);
  Map.beginColumn(0);
  Map.addSpan(0, 10);      // First row: kept.
  Map.addSpan(1 << 20, 30); // Would be a second row: clipped.
  Map.endColumn();
  EXPECT_EQ(Map.rowCount(), 1u);
  EXPECT_EQ(Map.cellBytes(0, 0), 10u);
  EXPECT_EQ(Map.clippedBytes(), 30u);
}

TEST(HeapHeatmapTest, ColumnCapFoldsIntoLast) {
  HeapHeatmap::Config Config;
  Config.BytesPerRow = 64;
  Config.ClockStride = 10;
  Config.MaxColumns = 4;
  HeapHeatmap Map(Config);
  // Clock 1000 would be column 100; the cap folds it into column 3.
  Map.beginColumn(1000);
  Map.addSpan(0, 9);
  Map.endColumn();
  EXPECT_LE(Map.columnCount(), 4u);
  EXPECT_EQ(Map.cellBytes(0, 39), 9u); // Column 3 covers clock [30, 40).
}

TEST(HeapHeatmapTest, GoldenJson) {
  HeapHeatmap::Config Config;
  Config.BytesPerRow = 64;
  Config.ClockStride = 100;
  HeapHeatmap Map(Config);
  Map.beginColumn(0);
  Map.addSpan(0, 24);
  Map.endColumn();
  Map.beginColumn(100);
  Map.addSpan(0, 24);
  Map.addSpan(64, 8);
  Map.endColumn();

  std::string Json;
  Map.writeJson(Json, "");
  std::optional<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc && Doc->isObject()) << Json;
  EXPECT_EQ(Doc->find("bytes_per_row")->number(), 64.0);
  EXPECT_EQ(Doc->find("clock_stride")->number(), 100.0);
  EXPECT_EQ(Doc->find("columns")->number(), 2.0);
  EXPECT_EQ(Doc->find("clipped_bytes")->number(), 0.0);
  const JsonValue *Rows = Doc->find("rows");
  ASSERT_TRUE(Rows && Rows->isArray());
  ASSERT_EQ(Rows->array().size(), 2u);
  EXPECT_EQ(Rows->array()[0].find("base")->number(), 0.0);
  const JsonValue *Cells = Rows->array()[0].find("cells");
  ASSERT_TRUE(Cells && Cells->isArray());
  ASSERT_EQ(Cells->array().size(), 2u); // Columns 0 and 1, 24 bytes each.
  EXPECT_EQ(Cells->array()[0].array()[0].number(), 0.0);
  EXPECT_EQ(Cells->array()[0].array()[1].number(), 24.0);
  EXPECT_EQ(Cells->array()[1].array()[0].number(), 1.0);
  EXPECT_EQ(Cells->array()[1].array()[1].number(), 24.0);
  EXPECT_EQ(Rows->array()[1].find("base")->number(), 64.0);
}

//===----------------------------------------------------------------------===//
// LatencyRecorder
//===----------------------------------------------------------------------===//

TEST(LatencyRecorderTest, DeterministicSamplingSchedule) {
  LatencyRecorder Recorder(4);
  // The countdown fires on every 4th operation, starting with the 4th.
  std::vector<bool> Fired;
  for (int I = 0; I < 8; ++I)
    Fired.push_back(Recorder.due());
  EXPECT_EQ(Fired, (std::vector<bool>{false, false, false, true, false,
                                      false, false, true}));

  // Period 0 clamps to 1: every operation sampled.
  LatencyRecorder Every(0);
  EXPECT_EQ(Every.samplePeriod(), 1u);
  EXPECT_TRUE(Every.due());
  EXPECT_TRUE(Every.due());
}

TEST(LatencyRecorderTest, EveryExportedKeyIsTimingClassified) {
  LatencyRecorder Recorder(1);
  Recorder.record(LatencyRecorder::OpAlloc, 500);
  Recorder.record(LatencyRecorder::OpAlloc, 700);
  Recorder.record(LatencyRecorder::OpFree, 200);
  EXPECT_EQ(Recorder.samples(LatencyRecorder::OpAlloc), 2u);
  EXPECT_EQ(Recorder.samples(LatencyRecorder::OpFree), 1u);
  EXPECT_GT(Recorder.quantileNanos(LatencyRecorder::OpAlloc, 0.5), 0.0);

  StatsRegistry Registry;
  Recorder.exportTelemetry(Registry, "firstfit.");
  size_t Keys = 0;
  for (const auto &[Key, Value] : Registry.counters()) {
    EXPECT_TRUE(isTimingMetric(Key)) << Key;
    ++Keys;
  }
  for (const auto &[Key, Value] : Registry.gauges()) {
    EXPECT_TRUE(isTimingMetric(Key)) << Key;
    ++Keys;
  }
  for (const auto &[Key, Hist] : Registry.histograms()) {
    EXPECT_TRUE(isTimingMetric(Key)) << Key;
    ++Keys;
  }
  EXPECT_GT(Keys, 0u);
  // The filtered jobs-invariance surface therefore excludes all of them.
  EXPECT_EQ(valueKeysOnly(Registry), "");
}

TEST(LatencyRecorderTest, TimedOpPreservesResultAndDetachedIsFree) {
  LatencyRecorder Recorder(1);
  int Calls = 0;
  int Result = timedAllocatorOp(&Recorder, LatencyRecorder::OpAlloc, [&] {
    ++Calls;
    return 42;
  });
  EXPECT_EQ(Result, 42);
  EXPECT_EQ(Calls, 1);
  EXPECT_EQ(Recorder.samples(LatencyRecorder::OpAlloc), 1u);

  // Detached: the op still runs exactly once, nothing is recorded.
  Result = timedAllocatorOp(nullptr, LatencyRecorder::OpFree, [&] {
    ++Calls;
    return 7;
  });
  EXPECT_EQ(Result, 7);
  EXPECT_EQ(Calls, 2);
}

//===----------------------------------------------------------------------===//
// Hand-built ten-op trace through first fit
//===----------------------------------------------------------------------===//

TEST(ObservatoryReplayTest, TenOpTraceHandComputed) {
  // Five 24-byte allocations, then five frees in allocation order: alloc
  // clocks are 24/48/72/96/120 (the byte clock advances by the size as
  // each allocation lands) and the lifetimes below schedule the deaths at
  // 144/146/148/150/152 — ten events, every heap state hand-checkable.
  AllocationTrace T;
  uint32_t Chain = T.internChain(CallChain{1, 2});
  T.append({120, 24, Chain, 1});
  T.append({98, 24, Chain, 1});
  T.append({76, 24, Chain, 1});
  T.append({54, 24, Chain, 1});
  T.append({32, 24, Chain, 1});
  CompiledTrace Compiled(T, SiteKeyPolicy::completeChain());

  FragmentationProbe Probe(1); // Stride 1: every event samples.
  HeapHeatmap::Config MapConfig;
  MapConfig.ClockStride = 1;
  HeapHeatmap Map(MapConfig);
  StatsRegistry Registry;
  SimTelemetry Telemetry;
  Telemetry.Registry = &Registry;
  Telemetry.Fragmentation = &Probe;
  Telemetry.Heatmap = &Map;

  BaselineSimResult Result =
      simulateFirstFit(Compiled, CostModel(), FirstFitAllocator::Config(),
                       &Telemetry);

  // One observatory sample per event.
  EXPECT_EQ(Probe.sampleCount(), 10u);

  // Live objects at the ten samples: 1,2,3,4,5 while allocating, then
  // 4,3,2,1,0 while freeing — 25 live-span observations in total, each a
  // 24-byte payload (bucket [16, 31]).
  EXPECT_EQ(Probe.liveSpans().count(), 25u);
  EXPECT_EQ(Probe.liveSpans().min(), 24u);
  EXPECT_EQ(Probe.liveSpans().max(), 24u);
  EXPECT_EQ(Probe.liveSpans().bucketCount(Log2Histogram::bucketIndex(24)),
            25u);

  // After the last free everything coalesces back into a single span, so
  // the final fragmentation index is exactly zero.
  EXPECT_EQ(Probe.lastFragIndexPpm(), 0u);

  // Every event grew the probe's free-span histogram by at least one span
  // (the heap always has wilderness), and the frag index peaked above
  // zero mid-replay when freed blocks sat between live ones.
  EXPECT_GT(Probe.freeSpans().count(), 0u);
  EXPECT_GT(Probe.maxFragIndexPpm(), 0u);

  // Heatmap: one 64 KB address row; the nine samples with live memory
  // each occupy one cell (stride 1 makes every event its own column), and
  // the sample after the final free contributes none.
  EXPECT_EQ(Map.rowCount(), 1u);
  EXPECT_EQ(Map.occupiedCells(), 9u);
  const uint64_t Base = FirstFitAllocator::Config().BaseAddress;
  EXPECT_EQ(Map.cellBytes(Base, 24), 24u);   // A alone.
  EXPECT_EQ(Map.cellBytes(Base, 120), 120u); // All five live.
  EXPECT_EQ(Map.cellBytes(Base, 152), 0u);   // Everything freed.

  // The registry carries the frag export under the family prefix, and the
  // replay result is unperturbed by instrumentation.
  EXPECT_EQ(Registry.counters().at("firstfit.frag.samples"), 10u);
  BaselineSimResult Plain = simulateFirstFit(Compiled);
  EXPECT_EQ(Plain.MaxHeapBytes, Result.MaxHeapBytes);
  EXPECT_EQ(Plain.MaxLiveBytes, Result.MaxLiveBytes);
}

//===----------------------------------------------------------------------===//
// Streamed replay matches in-memory replay
//===----------------------------------------------------------------------===//

TEST(ObservatoryReplayTest, StreamedProbeMatchesInMemory) {
  AllocationTrace T = makeSyntheticTrace(0x0b5e, 4000);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();

  const std::string Path = tempPath("observatory_stream.sched");
  ScheduleFileWriter::Config WriterConfig;
  WriterConfig.EventsPerChunk = 512; // Many chunks: cross-chunk sampling.
  ScheduleFileWriter Writer(Path, WriterConfig);
  Writer.append(T);
  ASSERT_TRUE(Writer.finish()) << Writer.error();
  std::string Error;
  auto File = ScheduleFile::open(Path, Error);
  ASSERT_TRUE(File) << Error;

  const uint64_t Stride = 8 * 1024;
  for (bool UseBsd : {false, true}) {
    FragmentationProbe MemProbe(Stride), StreamProbe(Stride);
    StatsRegistry MemRegistry, StreamRegistry;

    SimTelemetry Mem;
    Mem.Registry = &MemRegistry;
    Mem.Fragmentation = &MemProbe;
    SimTelemetry Stream;
    Stream.Registry = &StreamRegistry;
    Stream.Fragmentation = &StreamProbe;

    CompiledTrace Compiled(T, Policy);
    if (UseBsd) {
      simulateBsd(Compiled, CostModel(), BsdAllocator::Config(), &Mem);
      streamSimulateBsd(*File, CostModel(), BsdAllocator::Config(), &Stream);
    } else {
      simulateFirstFit(Compiled, CostModel(), FirstFitAllocator::Config(),
                       &Mem);
      streamSimulateFirstFit(*File, CostModel(), FirstFitAllocator::Config(),
                             &Stream);
    }

    EXPECT_EQ(MemProbe.sampleCount(), StreamProbe.sampleCount());
    EXPECT_EQ(MemProbe.lastFragIndexPpm(), StreamProbe.lastFragIndexPpm());
    EXPECT_EQ(MemProbe.maxFragIndexPpm(), StreamProbe.maxFragIndexPpm());
    EXPECT_EQ(MemProbe.largestFreeBlock(), StreamProbe.largestFreeBlock());
    EXPECT_EQ(MemProbe.freeSpans(), StreamProbe.freeSpans());
    EXPECT_EQ(MemProbe.liveSpans(), StreamProbe.liveSpans());
    EXPECT_EQ(valueKeysOnly(MemRegistry), valueKeysOnly(StreamRegistry))
        << (UseBsd ? "bsd" : "firstfit");
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Jobs invariance
//===----------------------------------------------------------------------===//

TEST(ObservatoryJobsTest, ValueKeysIdenticalAtAnyJobCount) {
  // Four programs, each replayed through first fit and BSD with every
  // observatory sink attached, fanned across pools of 1, 2, and 8
  // workers.  Per-program registries merged in program order must yield
  // byte-identical non-timing output regardless of the pool size.
  constexpr size_t Programs = 4;
  std::vector<AllocationTrace> Traces;
  for (size_t I = 0; I < Programs; ++I)
    Traces.push_back(makeSyntheticTrace(0x9100 + I, 1500));
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();

  auto RunAtJobs = [&](size_t Jobs) {
    ThreadPool Pool(Jobs);
    std::vector<StatsRegistry> PerProgram(Programs);
    std::vector<FragmentationProbe> Probes;
    std::vector<HeapHeatmap> Maps;
    std::vector<LatencyRecorder> Latencies(Programs * 2);
    HeapHeatmap::Config MapConfig;
    MapConfig.ClockStride = 16 * 1024;
    for (size_t I = 0; I < Programs * 2; ++I) {
      Probes.emplace_back(16 * 1024);
      Maps.emplace_back(MapConfig);
    }
    parallelForIndex(Pool, Programs, [&](size_t Index) {
      CompiledTrace Compiled(Traces[Index], Policy);
      SimTelemetry FF;
      FF.Registry = &PerProgram[Index];
      FF.Fragmentation = &Probes[Index * 2];
      FF.Heatmap = &Maps[Index * 2];
      FF.Latency = &Latencies[Index * 2];
      simulateFirstFit(Compiled, CostModel(), FirstFitAllocator::Config(),
                       &FF);
      SimTelemetry Bsd;
      Bsd.Registry = &PerProgram[Index];
      Bsd.Fragmentation = &Probes[Index * 2 + 1];
      Bsd.Heatmap = &Maps[Index * 2 + 1];
      Bsd.Latency = &Latencies[Index * 2 + 1];
      simulateBsd(Compiled, CostModel(), BsdAllocator::Config(), &Bsd);
    });
    StatsRegistry Merged;
    for (StatsRegistry &Program : PerProgram)
      Merged.merge(Program);
    // The heatmaps merge in program order too, like the sharded path.
    HeapHeatmap Combined(MapConfig);
    for (const HeapHeatmap &Map : Maps)
      Combined.merge(Map);
    std::string MapJson;
    Combined.writeJson(MapJson, "");
    return valueKeysOnly(Merged) + MapJson;
  };

  const std::string AtOne = RunAtJobs(1);
  const std::string AtTwo = RunAtJobs(2);
  const std::string AtEight = RunAtJobs(8);
  EXPECT_FALSE(AtOne.empty());
  EXPECT_TRUE(AtOne.find("firstfit.frag.samples") != std::string::npos);
  EXPECT_TRUE(AtOne.find("bsd.frag.samples") != std::string::npos);
  EXPECT_EQ(AtOne, AtTwo);
  EXPECT_EQ(AtOne, AtEight);
}

TEST(ObservatoryJobsTest, ShardedObservatoryInvariantAcrossPools) {
  AllocationTrace T = makeSyntheticTrace(0x51a4, 6000);
  const std::string Path = tempPath("observatory_shard.sched");
  ScheduleFileWriter::Config WriterConfig;
  WriterConfig.EventsPerChunk = 1024;
  ScheduleFileWriter Writer(Path, WriterConfig);
  Writer.append(T);
  ASSERT_TRUE(Writer.finish()) << Writer.error();
  std::string Error;
  auto File = ScheduleFile::open(Path, Error);
  ASSERT_TRUE(File) << Error;
  ASSERT_GT(File->chunkCount(), 2u) << "need several shards";

  auto RunAtJobs = [&](size_t Jobs) {
    ThreadPool Pool(Jobs);
    StatsRegistry Registry;
    HeapHeatmap::Config MapConfig;
    MapConfig.ClockStride = 32 * 1024;
    HeapHeatmap Merged(MapConfig);
    StreamObserveConfig Observe;
    Observe.FragStrideBytes = 32 * 1024;
    Observe.MergedHeatmap = &Merged;
    streamReplayBsdSharded(*File, Pool, BsdAllocator::Config(), &Registry,
                           /*ChunksPerShard=*/1, &Observe);
    std::string MapJson;
    Merged.writeJson(MapJson, "");
    return valueKeysOnly(Registry) + MapJson;
  };

  const std::string AtOne = RunAtJobs(1);
  const std::string AtFour = RunAtJobs(4);
  EXPECT_TRUE(AtOne.find("shard.frag.samples") != std::string::npos);
  EXPECT_TRUE(AtOne.find("shard.heatmap.rows") != std::string::npos);
  EXPECT_EQ(AtOne, AtFour);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Perf-trajectory ledger
//===----------------------------------------------------------------------===//

namespace {

/// Writes a minimal schema-v2 report carrying one value metric.
std::string writeReport(const std::string &Name, double HeapK,
                        double EventsPerSec) {
  std::string Path = tempPath(Name);
  std::ofstream Out(Path);
  Out << "{\n  \"schema_version\": 2,\n  \"bench\": \"ledger_unit\",\n"
      << "  \"manifest\": {\"git_sha\": \"abc123\", \"jobs\": 2},\n"
      << "  \"events\": 1000,\n  \"wall_seconds\": 0.5,\n"
      << "  \"events_per_sec\": " << EventsPerSec << ",\n"
      << "  \"values\": {\"prog.heap_k\": " << HeapK << "}\n}\n";
  return Path;
}

} // namespace

TEST(PerfLedgerTest, AppendReadRenderRoundTrip) {
  const std::string HistoryDir = tempPath("ledger_history");
  std::remove((HistoryDir + "/ledger_unit.jsonl").c_str());

  // Two steady runs, then a run whose heap metric doubles: an upward
  // regression for a non-timing key, beyond any reasonable tolerance.
  std::string Error;
  for (double HeapK : {100.0, 100.0, 200.0}) {
    std::string Report = writeReport("ledger_report.json", HeapK, 2e6);
    ASSERT_TRUE(appendRunRecord(Report, HistoryDir, Error)) << Error;
    std::remove(Report.c_str());
  }

  std::vector<LedgerRecord> Records;
  ASSERT_TRUE(readLedger(HistoryDir + "/ledger_unit.jsonl", Records, Error))
      << Error;
  ASSERT_EQ(Records.size(), 3u);
  EXPECT_EQ(Records[0].Bench, "ledger_unit");
  EXPECT_EQ(Records[0].GitSha, "abc123");
  EXPECT_EQ(Records[0].Events, 1000u);
  ASSERT_EQ(Records[2].Values.size(), 1u);
  EXPECT_EQ(Records[2].Values[0].first, "prog.heap_k");
  EXPECT_DOUBLE_EQ(Records[2].Values[0].second, 200.0);

  // Render to a file; the doubled heap metric must be flagged.
  HistoryOptions Options;
  Options.Tolerance = 0.10;
  std::string RenderPath = tempPath("ledger_render.txt");
  std::FILE *Out = std::fopen(RenderPath.c_str(), "w");
  ASSERT_NE(Out, nullptr);
  int Flagged = renderHistory(HistoryDir, Options, Out);
  std::fclose(Out);
  EXPECT_EQ(Flagged, 1);
  std::ifstream In(RenderPath);
  std::string Rendered((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
  EXPECT_TRUE(Rendered.find("prog.heap_k") != std::string::npos) << Rendered;
  EXPECT_TRUE(Rendered.find("ledger_unit") != std::string::npos) << Rendered;

  // A metric glob that matches nothing flags nothing.
  Options.MetricGlob = "no.such.metric";
  Out = std::fopen(RenderPath.c_str(), "w");
  ASSERT_NE(Out, nullptr);
  EXPECT_EQ(renderHistory(HistoryDir, Options, Out), 0);
  std::fclose(Out);
  std::remove(RenderPath.c_str());
  std::remove((HistoryDir + "/ledger_unit.jsonl").c_str());
}

TEST(PerfLedgerTest, AppendCreatesNestedHistoryDirectories) {
  // --append-history must work into a ledger directory that does not
  // exist yet, parents included (a fresh checkout or clean CI workspace).
  const std::string HistoryDir =
      tempPath("ledger_nested") + "/deeper/history";
  std::filesystem::remove_all(tempPath("ledger_nested"));
  ASSERT_FALSE(std::filesystem::exists(HistoryDir));

  std::string Error;
  std::string Report = writeReport("ledger_nested_report.json", 100.0, 2e6);
  ASSERT_TRUE(appendRunRecord(Report, HistoryDir, Error)) << Error;
  std::remove(Report.c_str());

  std::vector<LedgerRecord> Records;
  ASSERT_TRUE(readLedger(HistoryDir + "/ledger_unit.jsonl", Records, Error))
      << Error;
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_EQ(Records[0].Bench, "ledger_unit");
  std::filesystem::remove_all(tempPath("ledger_nested"));
}

TEST(PerfLedgerTest, HistoryLimitCapsTrailingWindowAndNamesLedger) {
  const std::string HistoryDir = tempPath("ledger_limit_history");
  std::filesystem::remove_all(HistoryDir);

  // Five runs ending in a doubled heap metric.
  std::string Error;
  for (double HeapK : {100.0, 100.0, 100.0, 100.0, 200.0}) {
    std::string Report = writeReport("ledger_limit_report.json", HeapK, 2e6);
    ASSERT_TRUE(appendRunRecord(Report, HistoryDir, Error)) << Error;
    std::remove(Report.c_str());
  }

  auto render = [&](const HistoryOptions &Options, int &Flagged) {
    std::string RenderPath = tempPath("ledger_limit_render.txt");
    std::FILE *Out = std::fopen(RenderPath.c_str(), "w");
    EXPECT_NE(Out, nullptr);
    Flagged = renderHistory(HistoryDir, Options, Out);
    std::fclose(Out);
    std::ifstream In(RenderPath);
    std::string Rendered((std::istreambuf_iterator<char>(In)),
                         std::istreambuf_iterator<char>());
    std::remove(RenderPath.c_str());
    return Rendered;
  };

  // Unlimited: all five runs considered, the jump is flagged, and the
  // rendering names the ledger file it read.
  HistoryOptions Options;
  Options.Tolerance = 0.10;
  int Flagged = 0;
  std::string Rendered = render(Options, Flagged);
  EXPECT_EQ(Flagged, 1);
  EXPECT_TRUE(Rendered.find("(5 runs") != std::string::npos) << Rendered;
  EXPECT_TRUE(Rendered.find("ledger: ") != std::string::npos) << Rendered;
  EXPECT_TRUE(Rendered.find("ledger_unit.jsonl") != std::string::npos)
      << Rendered;

  // --limit=3 reads only the trailing window and says so.
  Options.Limit = 3;
  Rendered = render(Options, Flagged);
  EXPECT_EQ(Flagged, 1);
  EXPECT_TRUE(Rendered.find("(last 3 of 5 runs") != std::string::npos)
      << Rendered;

  // --limit=2 leaves too few records for the deviation check to run.
  Options.Limit = 2;
  Rendered = render(Options, Flagged);
  EXPECT_EQ(Flagged, 0);
  EXPECT_TRUE(Rendered.find("(last 2 of 5 runs") != std::string::npos)
      << Rendered;
  std::filesystem::remove_all(HistoryDir);
}

TEST(PerfLedgerTest, SparklineScalesToOwnRange) {
  // Eight glyph levels: the minimum maps to the lowest bar, the maximum
  // to the highest, and a constant series renders mid-level, not empty.
  std::string Line = sparkline({0.0, 7.0});
  EXPECT_EQ(Line.size(), 2 * 3u); // Two UTF-8 block glyphs, 3 bytes each.
  EXPECT_EQ(Line.substr(0, 3), "▁");
  EXPECT_EQ(Line.substr(3, 3), "█");
  EXPECT_FALSE(sparkline({5.0, 5.0, 5.0}).empty());
  EXPECT_TRUE(sparkline({}).empty());
}
