//===- tests/integration_test.cpp - Paper-shape integration tests ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Runs the full pipeline over the five program models at reduced scale and
// asserts the qualitative shape of the paper's results: who wins, where the
// jumps fall, which programs misbehave.  Exact values are checked by eye
// against the bench output (see EXPERIMENTS.md); these tests guard the
// load-bearing relationships.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sim/TraceSimulator.h"
#include "workloads/PaperData.h"
#include "workloads/Programs.h"
#include "workloads/WorkloadRunner.h"

#include "gtest/gtest.h"

#include <map>
#include <memory>
#include <string>

using namespace lifepred;

namespace {

/// Shared fixture state: traces and pipeline results per program, computed
/// once for the whole suite (generation is the expensive part).
struct ProgramState {
  ProgramModel Model;
  FunctionRegistry Registry;
  AllocationTrace Train;
  AllocationTrace Test;
  PipelineResult Self; ///< Complete-chain self prediction.
  PredictionReport True;
};

class IntegrationTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    States = new std::map<std::string, ProgramState>();
    for (ProgramModel &Model : allPrograms()) {
      ProgramState &S = (*States)[Model.Name];
      S.Model = Model;
      RunOptions O;
      O.Scale = 0.15;
      O.Kind = RunKind::Train;
      S.Train = runWorkload(Model, O, S.Registry);
      O.Kind = RunKind::Test;
      S.Test = runWorkload(Model, O, S.Registry);
      SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
      S.Self = trainAndEvaluate(S.Train, S.Train, Policy);
      S.True = evaluatePrediction(S.Test, S.Self.Database);
    }
  }
  static void TearDownTestSuite() {
    delete States;
    States = nullptr;
  }

  static ProgramState &state(const std::string &Name) {
    return States->at(Name);
  }

  static std::map<std::string, ProgramState> *States;
};

std::map<std::string, ProgramState> *IntegrationTest::States = nullptr;

double selfPredictAtLength(ProgramState &S, unsigned Length) {
  SiteKeyPolicy Policy = Length == 0 ? SiteKeyPolicy::completeChain()
                                     : SiteKeyPolicy::lastN(Length);
  return trainAndEvaluate(S.Train, S.Train, Policy)
      .Report.predictedShortPercent();
}

} // namespace

TEST_F(IntegrationTest, GenerationalHypothesisHolds) {
  // Paper section 4: short-lived objects account for >90% of bytes in
  // every program.
  for (const auto &[Name, S] : *States)
    EXPECT_GT(S.Self.Report.actualShortPercent(), 88.0) << Name;
}

TEST_F(IntegrationTest, SelfPredictionNeverErrs) {
  for (const auto &[Name, S] : *States)
    EXPECT_DOUBLE_EQ(S.Self.Report.errorPercent(), 0.0) << Name;
}

TEST_F(IntegrationTest, SelfPredictionFindsMostShortBytesExceptEspresso) {
  // Paper Table 4: 79-99% everywhere except ESPRESSO's 41.8%.
  EXPECT_GT(state("CFRAC").Self.Report.predictedShortPercent(), 70.0);
  EXPECT_GT(state("GAWK").Self.Report.predictedShortPercent(), 90.0);
  EXPECT_GT(state("GHOST").Self.Report.predictedShortPercent(), 70.0);
  EXPECT_GT(state("PERL").Self.Report.predictedShortPercent(), 85.0);
  double Espresso = state("ESPRESSO").Self.Report.predictedShortPercent();
  EXPECT_GT(Espresso, 30.0);
  EXPECT_LT(Espresso, 55.0);
}

TEST_F(IntegrationTest, TruePredictionErrorsOnlyWhereThePaperErrs) {
  // CFRAC and PERL have nonzero error bytes; the others are clean.
  EXPECT_GT(state("CFRAC").True.errorPercent(), 1.0);
  EXPECT_GT(state("PERL").True.errorPercent(), 0.3);
  EXPECT_LT(state("ESPRESSO").True.errorPercent(), 0.3);
  EXPECT_LT(state("GAWK").True.errorPercent(), 0.1);
  // GHOST is clean at full scale; at this reduced scale a handful of
  // sparsely-trained mixed sites can slip through (see EXPERIMENTS.md).
  EXPECT_LT(state("GHOST").True.errorPercent(), 0.7);
}

TEST_F(IntegrationTest, GawkTrueMatchesSelf) {
  // Same awk program, different data: true prediction equals self.
  ProgramState &S = state("GAWK");
  EXPECT_NEAR(S.True.predictedShortPercent(),
              S.Self.Report.predictedShortPercent(), 3.0);
}

TEST_F(IntegrationTest, PerlTrueCollapsesVersusSelf) {
  // Different perl scripts: the paper's 91.4% -> 20.4% collapse.
  ProgramState &S = state("PERL");
  EXPECT_LT(S.True.predictedShortPercent(),
            0.45 * S.Self.Report.predictedShortPercent());
}

TEST_F(IntegrationTest, SizeOnlyPredictionIsWeak) {
  // Paper Table 5: size alone predicts far less than site+size.
  for (const auto &[Name, S] : *States) {
    auto &State = (*States)[Name];
    PipelineResult SizeOnly = trainAndEvaluate(
        State.Train, State.Train, SiteKeyPolicy::sizeOnly());
    EXPECT_LT(SizeOnly.Report.predictedShortPercent(),
              S.Self.Report.predictedShortPercent() + 1e-9)
        << Name;
    EXPECT_LT(SizeOnly.Report.predictedShortPercent(), 45.0) << Name;
  }
  // CFRAC is the extreme: size predicts essentially nothing.
  PipelineResult Cfrac = trainAndEvaluate(
      state("CFRAC").Train, state("CFRAC").Train, SiteKeyPolicy::sizeOnly());
  EXPECT_LT(Cfrac.Report.predictedShortPercent(), 2.0);
}

TEST_F(IntegrationTest, ChainLengthJumpsWhereThePaperJumps) {
  // Table 6's parenthesized lengths: the abrupt improvement.
  struct JumpCase {
    const char *Program;
    unsigned JumpAt;
    double MinGain;
  };
  for (const JumpCase &Case :
       {JumpCase{"CFRAC", 2, 15}, JumpCase{"GAWK", 3, 12},
        JumpCase{"GHOST", 4, 20}, JumpCase{"PERL", 4, 15}}) {
    ProgramState &S = state(Case.Program);
    double Before = selfPredictAtLength(S, Case.JumpAt - 1);
    double After = selfPredictAtLength(S, Case.JumpAt);
    EXPECT_GT(After - Before, Case.MinGain)
        << Case.Program << " jump at length " << Case.JumpAt;
  }
}

TEST_F(IntegrationTest, EspressoChainResponseIsFlat) {
  ProgramState &S = state("ESPRESSO");
  double L1 = selfPredictAtLength(S, 1);
  double L7 = selfPredictAtLength(S, 7);
  EXPECT_LT(L7 - L1, 8.0);
}

TEST_F(IntegrationTest, RecursionMakesCompleteChainPredictLess) {
  // Paper Table 6 note: pruning merges sites that raw length-7 sub-chains
  // keep apart (ESPRESSO and PERL recurse).
  for (const char *Name : {"ESPRESSO", "PERL"}) {
    ProgramState &S = state(Name);
    double L7 = selfPredictAtLength(S, 7);
    double Complete = selfPredictAtLength(S, 0);
    EXPECT_LT(Complete, L7 + 0.1) << Name;
  }
}

TEST_F(IntegrationTest, Length4CapturesMostOfCompleteChain) {
  // The paper's practical conclusion: length-4 chains recover >90% of the
  // complete chain's prediction.
  for (const auto &[Name, Unused] : *States) {
    ProgramState &S = state(Name);
    double L4 = selfPredictAtLength(S, 4);
    double Complete = selfPredictAtLength(S, 0);
    EXPECT_GT(L4, 0.9 * Complete) << Name;
  }
}

TEST_F(IntegrationTest, ArenaFractionsMatchPaperShapes) {
  // Table 7 under true prediction.
  for (const auto &[Name, Unused] : *States) {
    ProgramState &S = state(Name);
    ArenaSimResult Sim =
        simulateArena(S.Test, S.Self.Database, S.Model.CallsPerAlloc);
    if (Name == "CFRAC") {
      // Pollution collapse.
      EXPECT_LT(Sim.arenaAllocPercent(), 8.0);
    } else if (Name == "GAWK") {
      EXPECT_GT(Sim.arenaAllocPercent(), 90.0);
    } else if (Name == "GHOST") {
      // Many objects, few bytes: the 6 KB objects skip the arenas.
      EXPECT_GT(Sim.arenaAllocPercent(), 55.0);
      EXPECT_LT(Sim.arenaBytesPercent(), Sim.arenaAllocPercent() - 20.0);
      EXPECT_GT(Sim.Arena.OversizeAllocs, 0u);
    }
  }
}

TEST_F(IntegrationTest, ArenaAddsOverheadToSmallHeapsAndHelpsGhost) {
  // Table 8's central contrast.
  for (const char *Name : {"GAWK", "PERL"}) {
    ProgramState &S = state(Name);
    BaselineSimResult FF = simulateFirstFit(S.Test);
    ArenaSimResult Arena =
        simulateArena(S.Test, S.Self.Database, S.Model.CallsPerAlloc);
    EXPECT_GT(Arena.MaxHeapBytes, FF.MaxHeapBytes) << Name;
  }
  {
    ProgramState &S = state("GHOST");
    BaselineSimResult FF = simulateFirstFit(S.Test);
    ArenaSimResult Arena =
        simulateArena(S.Test, S.Self.Database, S.Model.CallsPerAlloc);
    // At this reduced scale the saving can shrink to a tie; at full scale
    // the arena heap is decisively smaller (Table 8 bench).
    EXPECT_LE(Arena.MaxHeapBytes, FF.MaxHeapBytes);
  }
}

TEST_F(IntegrationTest, CpuCostWinnersMatchTable9) {
  CostModel Costs;
  // GAWK: prediction succeeds, arena beats both baselines.
  {
    ProgramState &S = state("GAWK");
    ArenaSimResult Arena = simulateArena(S.Test, S.Self.Database,
                                         S.Model.CallsPerAlloc, Costs);
    BaselineSimResult FF = simulateFirstFit(S.Test, Costs);
    BaselineSimResult Bsd = simulateBsd(S.Test, Costs);
    EXPECT_LT(Arena.InstrLen4.total(), FF.Instr.total());
    EXPECT_LT(Arena.InstrLen4.total(), Bsd.Instr.total());
  }
  // CFRAC: pollution makes the arena allocator the worst.
  {
    ProgramState &S = state("CFRAC");
    ArenaSimResult Arena = simulateArena(S.Test, S.Self.Database,
                                         S.Model.CallsPerAlloc, Costs);
    BaselineSimResult FF = simulateFirstFit(S.Test, Costs);
    EXPECT_GT(Arena.InstrLen4.total(), FF.Instr.total());
  }
  // Everywhere: BSD free is the cheap baseline, and cce never beats len-4
  // by much when calls-per-alloc is high.
  {
    ProgramState &S = state("PERL");
    ArenaSimResult Arena = simulateArena(S.Test, S.Self.Database,
                                         S.Model.CallsPerAlloc, Costs);
    EXPECT_GT(Arena.InstrCce.Alloc, Arena.InstrLen4.Alloc);
  }
}

TEST_F(IntegrationTest, SiteCountsTrackPaperMagnitudes) {
  // Order-of-magnitude guard: ESPRESSO has thousands of sites, the others
  // hundreds.
  EXPECT_GT(state("ESPRESSO").Self.TrainingProfile.Sites.size(), 1500u);
  for (const char *Name : {"CFRAC", "GAWK", "PERL", "GHOST"}) {
    EXPECT_LT(state(Name).Self.TrainingProfile.Sites.size(), 800u) << Name;
    EXPECT_GT(state(Name).Self.TrainingProfile.Sites.size(), 80u) << Name;
  }
}
