//===- tests/online_predictor_test.cpp - Online prediction differentials ---===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential battery that proves the online adaptive predictor
/// correct (DESIGN.md §17):
///
///  * Frozen differential — a warm-started predictor with ReactToDrift
///    off IS the static path: its route plan must match the compiled
///    PredictedShortBits bit-for-bit, on every paper workload and every
///    corpus trace, over both the oracle and compiled drivers.
///  * Driver differential — the oracle-path and compiled-path route
///    plans of the *reactive* model must be value-identical (routes,
///    retrain log, epochs, per-site forensics), because the two event
///    streams are bit-identical by the CompiledTrace contract.
///  * Drift reaction — on an engineered drift trace the model must flag
///    the drifting site, re-route it within one window of the flag, and
///    strictly beat the static database's accuracy.
///  * Jobs invariance — the sharded replay shapes consuming the frozen
///    plan export byte-identical registries at --jobs 1/2/8, run to run,
///    for both the in-memory and on-disk tiers.
///  * Invariant checks — the online-routed arena replay passes the
///    shadow oracle on the corpus.
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "runtime/Retrainer.h"
#include "sim/OnlineReplay.h"
#include "support/ThreadPool.h"
#include "telemetry/StatsRegistry.h"
#include "trace/ScheduleFile.h"
#include "trace/TraceBinaryIO.h"
#include "verify/ShadowSim.h"
#include "workloads/Programs.h"
#include "workloads/WorkloadRunner.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>

using namespace lifepred;

#ifndef LIFEPRED_CORPUS_DIR
#error "LIFEPRED_CORPUS_DIR must be defined by the build"
#endif

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  std::error_code EC;
  for (const auto &Entry :
       std::filesystem::directory_iterator(LIFEPRED_CORPUS_DIR, EC))
    if (Entry.path().extension() == ".lptrace")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

AllocationTrace loadCorpusTrace(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  EXPECT_TRUE(IS) << "cannot open " << Path;
  std::optional<AllocationTrace> Trace = readTraceBinary(IS);
  EXPECT_TRUE(Trace.has_value()) << Path << " is not a binary trace";
  return Trace ? *Trace : AllocationTrace();
}

/// Train/test pair for one paper workload at a small scale.
struct WorkloadPair {
  AllocationTrace Train, Test;
};

ProgramModel findProgram(const std::string &Name) {
  for (const ProgramModel &Model : allPrograms())
    if (Model.Name == Name)
      return Model;
  ADD_FAILURE() << "no program named " << Name;
  return allPrograms().front();
}

WorkloadPair makeWorkload(const ProgramModel &Model, double Scale = 0.02) {
  WorkloadPair Pair;
  FunctionRegistry Functions;
  RunOptions Options;
  Options.Scale = Scale;
  Options.Kind = RunKind::Train;
  Pair.Train = runWorkload(Model, Options, Functions);
  Options.Kind = RunKind::Test;
  Pair.Test = runWorkload(Model, Options, Functions);
  return Pair;
}

std::string registryJson(const StatsRegistry &Registry) {
  std::string Out;
  Registry.writeJson(Out, "");
  return Out;
}

/// Self-trains a database over \p Trace (corpus traces have no split).
SiteDatabase selfTrain(const AllocationTrace &Trace,
                       const SiteKeyPolicy &Policy) {
  return trainDatabase(profileTrace(Trace, Policy), Policy);
}

/// Post-drift lifetime of the churn site: past the threshold, but small
/// enough that death evidence reaches the model within a few windows of
/// the drift (an object can only be observed when it dies).
constexpr uint64_t DriftedLifetime = 120000;

/// A two-phase drift trace from two sites: the churn site's lifetimes are
/// arena-short for the first half, then jump past the threshold; a
/// stable long-lived site rides along.  Training sees only the early
/// phase, so the static database routes the churn site short forever.
AllocationTrace driftTrace(size_t Objects, bool LatePhase) {
  AllocationTrace T;
  uint32_t ChurnChain = T.internChain(CallChain{10, 20});
  uint32_t NodeChain = T.internChain(CallChain{10, 30});
  for (size_t I = 0; I < Objects; ++I) {
    bool Late = LatePhase && I >= Objects / 2;
    if (I % 8 != 0)
      T.append({Late ? DriftedLifetime : uint64_t(512), 64, ChurnChain, 1});
    else
      T.append({uint64_t(600000), 64, NodeChain, 1});
  }
  return T;
}

} // namespace

//===----------------------------------------------------------------------===//
// Frozen differential: warm start + no reaction == the static path
//===----------------------------------------------------------------------===//

class PaperWorkloadOnlineTest : public testing::TestWithParam<ProgramModel> {};

TEST_P(PaperWorkloadOnlineTest, FrozenWarmStartMatchesStaticBits) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  WorkloadPair Pair = makeWorkload(GetParam());
  SiteDatabase DB = selfTrain(Pair.Train, Policy);
  CompiledTrace Compiled(Pair.Test, Policy);
  PredictedShortBits Static(Compiled, DB);

  OnlinePredictorConfig Frozen;
  Frozen.WarmStart = &DB;
  Frozen.ReactToDrift = false;

  OnlineRoutePlan CompiledPlan = compileOnlineRoutes(Compiled, Frozen);
  OnlineRoutePlan OraclePlan =
      replayOnlineRoutesOracle(Pair.Test, Policy, Frozen);
  EXPECT_EQ(CompiledPlan, OraclePlan);
  EXPECT_EQ(CompiledPlan.Epochs, 0u);
  EXPECT_TRUE(CompiledPlan.Retrains.empty());
  ASSERT_EQ(CompiledPlan.Records, Pair.Test.size());
  for (size_t Id = 0; Id < Pair.Test.size(); ++Id)
    ASSERT_EQ(CompiledPlan.testShort(Id), Static.test(Id))
        << "record " << Id << " of " << GetParam().Name;
}

TEST_P(PaperWorkloadOnlineTest, ReactiveOracleAndCompiledPlansAgree) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  WorkloadPair Pair = makeWorkload(GetParam());
  SiteDatabase DB = selfTrain(Pair.Train, Policy);
  CompiledTrace Compiled(Pair.Test, Policy);

  OnlinePredictorConfig Config;
  Config.WarmStart = &DB;
  OnlineRoutePlan CompiledPlan = compileOnlineRoutes(Compiled, Config);
  OnlineRoutePlan OraclePlan =
      replayOnlineRoutesOracle(Pair.Test, Policy, Config);
  EXPECT_EQ(CompiledPlan, OraclePlan);
}

TEST_P(PaperWorkloadOnlineTest, OnlineNeverLosesToStatic) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  WorkloadPair Pair = makeWorkload(GetParam(), 0.05);
  SiteDatabase DB = selfTrain(Pair.Train, Policy);
  CompiledTrace Compiled(Pair.Test, Policy);
  PredictedShortBits Static(Compiled, DB);

  OnlinePredictorConfig Config;
  Config.WarmStart = &DB;
  OnlineRoutePlan Plan = compileOnlineRoutes(Compiled, Config);

  RouteScore StaticScore =
      scoreRoutes(Pair.Test, DB.threshold(),
                  [&Static](uint64_t Id) { return Static.test(Id); });
  RouteScore OnlineScore =
      scoreRoutes(Pair.Test, DB.threshold(),
                  [&Plan](uint64_t Id) { return Plan.testShort(Id); });
  EXPECT_GE(OnlineScore.accuracyPpm(), StaticScore.accuracyPpm())
      << GetParam().Name << ": online adaptation lost to its warm start";
}

INSTANTIATE_TEST_SUITE_P(Programs, PaperWorkloadOnlineTest,
                         testing::ValuesIn(allPrograms()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

//===----------------------------------------------------------------------===//
// Corpus differentials
//===----------------------------------------------------------------------===//

class CorpusOnlineTest : public testing::TestWithParam<std::string> {};

TEST_P(CorpusOnlineTest, FrozenAndReactivePlansDifferentialOnCorpus) {
  AllocationTrace Trace = loadCorpusTrace(GetParam());
  ASSERT_GT(Trace.size(), 0u);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = selfTrain(Trace, Policy);
  CompiledTrace Compiled(Trace, Policy);
  PredictedShortBits Static(Compiled, DB);

  // Frozen == static, over both drivers.
  OnlinePredictorConfig Frozen;
  Frozen.WarmStart = &DB;
  Frozen.ReactToDrift = false;
  OnlineRoutePlan FrozenCompiled = compileOnlineRoutes(Compiled, Frozen);
  OnlineRoutePlan FrozenOracle =
      replayOnlineRoutesOracle(Trace, Policy, Frozen);
  EXPECT_EQ(FrozenCompiled, FrozenOracle);
  for (size_t Id = 0; Id < Trace.size(); ++Id)
    ASSERT_EQ(FrozenCompiled.testShort(Id), Static.test(Id)) << "record "
                                                             << Id;

  // Reactive oracle == reactive compiled.
  OnlinePredictorConfig Reactive;
  Reactive.WarmStart = &DB;
  EXPECT_EQ(compileOnlineRoutes(Compiled, Reactive),
            replayOnlineRoutesOracle(Trace, Policy, Reactive));
}

TEST_P(CorpusOnlineTest, OnlineRoutedArenaPassesShadowOracle) {
  AllocationTrace Trace = loadCorpusTrace(GetParam());
  ASSERT_GT(Trace.size(), 0u);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = selfTrain(Trace, Policy);
  OnlinePredictorConfig Config;
  Config.WarmStart = &DB;
  for (ReplayPath Path : {ReplayPath::Oracle, ReplayPath::Compiled}) {
    ShadowReport Report =
        shadowCheckArenaOnline(Trace, DB, Config, {}, Path);
    EXPECT_TRUE(Report.clean())
        << GetParam() << ": " << Report.summary()
        << (Report.Violations.empty()
                ? ""
                : "; first: " + Report.Violations[0].Invariant + ": " +
                      Report.Violations[0].Detail);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusOnlineTest,
                         testing::ValuesIn(corpusFiles()),
                         [](const auto &Info) {
                           std::string Stem =
                               std::filesystem::path(Info.param)
                                   .stem()
                                   .string();
                           std::replace_if(
                               Stem.begin(), Stem.end(),
                               [](char C) { return !std::isalnum(C); }, '_');
                           return Stem;
                         });

//===----------------------------------------------------------------------===//
// Drift reaction
//===----------------------------------------------------------------------===//

TEST(OnlineDriftReactionTest, FlaggedSiteReRoutesWithinOneWindow) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  // Train on the steady phase only; test drifts at the midpoint.
  AllocationTrace Train = driftTrace(20000, /*LatePhase=*/false);
  AllocationTrace Test = driftTrace(20000, /*LatePhase=*/true);
  SiteDatabase DB = selfTrain(Train, Policy);
  CompiledTrace Compiled(Test, Policy);

  // The churn site must start short (the whole point of the setup).
  PredictedShortBits Static(Compiled, DB);
  ASSERT_TRUE(Static.test(1)); // Record 1 is a churn alloc.
  ASSERT_FALSE(Static.test(0)); // Record 0 is the long-lived site.

  OnlinePredictorConfig Config;
  Config.WarmStart = &DB;
  OnlineRoutePlan Plan = compileOnlineRoutes(Compiled, Config);

  // The model must have flagged and re-routed the churn site short->long.
  ASSERT_FALSE(Plan.Retrains.empty()) << "drift never flagged";
  const RetrainEvent *Flip = nullptr;
  for (const RetrainEvent &Event : Plan.Retrains)
    if (Event.OldRoute && !Event.NewRoute) {
      Flip = &Event;
      break;
    }
  ASSERT_NE(Flip, nullptr) << "no short->long re-route applied";

  // Re-routing happens AT the window close that trips the CUSUM, so the
  // re-route is within one window of the flag by construction.  Pin the
  // end-to-end lag too: evidence of the drift first arrives when the
  // first drifted object *dies* — one DriftedLifetime after the onset —
  // and the flip must land within two windows of that (one to fill the
  // window holding the first long deaths, one for the decision close).
  uint64_t DriftClock = Test.totalBytes() / 2;
  uint64_t FirstEvidence = DriftClock + DriftedLifetime;
  EXPECT_GE(Flip->Clock, DriftClock - Plan.WindowBytes);
  EXPECT_LE(Flip->Clock, FirstEvidence + 2 * Plan.WindowBytes);

  // After the flip, every churn allocation routes long: accuracy must
  // strictly beat the static database, which mispredicts the entire
  // late phase.
  RouteScore StaticScore =
      scoreRoutes(Test, DB.threshold(),
                  [&Static](uint64_t Id) { return Static.test(Id); });
  RouteScore OnlineScore =
      scoreRoutes(Test, DB.threshold(),
                  [&Plan](uint64_t Id) { return Plan.testShort(Id); });
  EXPECT_GT(OnlineScore.accuracyPpm(), StaticScore.accuracyPpm())
      << "online adaptation did not improve on an engineered drift";
  EXPECT_GE(Plan.Epochs, 1u);
}

TEST(OnlineDriftReactionTest, ColdStartLearnsShortSite) {
  // No warm-start database: every site starts long.  A site whose deaths
  // are all arena-short must be re-routed short once evidence arrives.
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace Test = driftTrace(20000, /*LatePhase=*/false);
  CompiledTrace Compiled(Test, Policy);

  OnlinePredictorConfig Config; // Cold start, default threshold.
  OnlineRoutePlan Plan = compileOnlineRoutes(Compiled, Config);
  ASSERT_FALSE(Plan.Retrains.empty());
  EXPECT_TRUE(Plan.Retrains[0].NewRoute) << "short site not learned";
  // Late records of the churn site route short.
  EXPECT_TRUE(Plan.testShort(Test.size() - 2));
}

//===----------------------------------------------------------------------===//
// Jobs invariance of the sharded online replay shapes
//===----------------------------------------------------------------------===//

TEST(OnlineJobsInvarianceTest, ShardedRegistryByteIdenticalAcrossJobs) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  WorkloadPair Pair = makeWorkload(findProgram("ESPRESSO"), 0.05);
  SiteDatabase DB = selfTrain(Pair.Train, Policy);
  CompiledTrace Compiled(Pair.Test, Policy);

  OnlinePredictorConfig Config;
  Config.WarmStart = &DB;
  OnlineRoutePlan Plan = compileOnlineRoutes(Compiled, Config);
  DynamicRouteBits Routes(Plan.RouteWords);

  // Small shards so every worker count splits the schedule many ways.
  const size_t ShardEvents = 4096;
  std::string Golden;
  for (unsigned Jobs : {1u, 2u, 8u}) {
    ThreadPool Pool(Jobs);
    StatsRegistry Registry;
    OnlineShardedResult Result = onlineReplaySharded(
        Compiled, Routes, DB.threshold(), Pool, &Registry, nullptr,
        ShardEvents);
    EXPECT_GT(Result.Events, 0u);
    std::string Json = registryJson(Registry);
    if (Golden.empty())
      Golden = Json;
    else
      EXPECT_EQ(Json, Golden) << "registry diverged at --jobs " << Jobs;
    // Run-to-run: an identical second replay at the same worker count.
    StatsRegistry Again;
    onlineReplaySharded(Compiled, Routes, DB.threshold(), Pool, &Again,
                        nullptr, ShardEvents);
    EXPECT_EQ(registryJson(Again), Json)
        << "registry not reproducible at --jobs " << Jobs;
  }
}

TEST(OnlineJobsInvarianceTest, StreamedRegistryByteIdenticalAcrossJobs) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  WorkloadPair Pair = makeWorkload(findProgram("CFRAC"), 0.05);
  SiteDatabase DB = selfTrain(Pair.Train, Policy);
  CompiledTrace Compiled(Pair.Test, Policy);

  OnlinePredictorConfig Config;
  Config.WarmStart = &DB;
  OnlineRoutePlan Plan = compileOnlineRoutes(Compiled, Config);
  DynamicRouteBits Routes(Plan.RouteWords);
  std::vector<uint64_t> EventRoutes =
      expandRoutesToEvents(Compiled.schedule(), Routes);

  std::string Path = testing::TempDir() + "online_cfrac.sched";
  ScheduleFileWriter::Config WriterConfig;
  WriterConfig.EventsPerChunk = 4096;
  ScheduleFileWriter Writer(Path, WriterConfig);
  Writer.append(Pair.Test);
  ASSERT_TRUE(Writer.finish()) << Writer.error();
  std::string Error;
  std::optional<ScheduleFile> File = ScheduleFile::open(Path, Error);
  ASSERT_TRUE(File.has_value()) << Error;
  ASSERT_GT(File->chunkCount(), 1u);

  std::string Golden;
  for (unsigned Jobs : {1u, 2u, 8u}) {
    ThreadPool Pool(Jobs);
    StatsRegistry Registry;
    StreamOnlineResult Result =
        streamReplayOnlineSharded(*File, Pool, EventRoutes, &Registry);
    EXPECT_GT(Result.Events, 0u);
    std::string Json = registryJson(Registry);
    if (Golden.empty())
      Golden = Json;
    else
      EXPECT_EQ(Json, Golden) << "stream registry diverged at --jobs "
                              << Jobs;
  }
  std::filesystem::remove(Path);
}
