//===- tests/locality_test.cpp - Cache simulator tests ---------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Trainer.h"
#include "locality/CacheSim.h"
#include "locality/LocalityExperiment.h"
#include "locality/PageSim.h"
#include "support/Random.h"
#include "verify/TraceFuzzer.h"

#include "gtest/gtest.h"

using namespace lifepred;

TEST(CacheSimTest, RepeatAccessHits) {
  CacheSim C;
  EXPECT_FALSE(C.access(0x1000)); // Cold miss.
  EXPECT_TRUE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1010)); // Same 32-byte line.
  EXPECT_EQ(C.hits(), 2u);
  EXPECT_EQ(C.misses(), 1u);
}

TEST(CacheSimTest, DistinctLinesMiss) {
  CacheSim C;
  EXPECT_FALSE(C.access(0x1000));
  EXPECT_FALSE(C.access(0x1020)); // Next line.
  EXPECT_EQ(C.misses(), 2u);
}

TEST(CacheSimTest, LruEvictionWithinSet) {
  CacheSim::Config Cfg;
  Cfg.CacheBytes = 128; // 2 sets of 2 ways at 32-byte lines.
  Cfg.LineBytes = 32;
  Cfg.Ways = 2;
  CacheSim C(Cfg);
  // Three lines mapping to set 0 (stride = 2 lines * 32 = 64 bytes).
  C.access(0);   // Miss; way 0.
  C.access(64);  // Miss; way 1.
  C.access(0);   // Hit; 64 becomes LRU.
  C.access(128); // Miss; evicts 64.
  EXPECT_TRUE(C.access(0));
  EXPECT_FALSE(C.access(64)); // Was evicted.
}

TEST(CacheSimTest, WorkingSetWithinCacheEventuallyAllHits) {
  CacheSim C; // 64 KB.
  // A 32 KB working set: after the first sweep everything hits.
  for (uint64_t Pass = 0; Pass < 3; ++Pass)
    for (uint64_t Addr = 0; Addr < 32768; Addr += 32)
      C.access(Addr);
  // 1024 cold misses out of 3072 accesses.
  EXPECT_EQ(C.misses(), 1024u);
  EXPECT_EQ(C.hits(), 2048u);
}

TEST(CacheSimTest, MissRatePercent) {
  CacheSim C;
  C.access(0);
  C.access(0);
  EXPECT_DOUBLE_EQ(C.missRatePercent(), 50.0);
}

TEST(LocalityExperimentTest, ArenaImprovesLocalityOnChurn) {
  // Short-lived churn mixed with long-lived objects: the paper's claim is
  // that confining the churn to the 64 KB arena area lowers miss rates.
  AllocationTrace T;
  Rng R(11);
  uint32_t ShortChain = T.internChain(CallChain{1, 2});
  uint32_t LongChain = T.internChain(CallChain{1, 3});
  for (int I = 0; I < 60000; ++I) {
    if (R.nextBool(0.9))
      T.append({static_cast<uint64_t>(R.nextInRange(32, 3000)), 48,
                ShortChain, 4});
    else
      T.append({static_cast<uint64_t>(R.nextInRange(200000, 2000000)), 64,
                LongChain, 2});
  }
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);
  LocalityResult Result = compareLocality(T, DB);
  EXPECT_GT(Result.Accesses, 100000u);
  EXPECT_LT(Result.ArenaMissPercent, Result.FirstFitMissPercent);
}

TEST(LocalityExperimentTest, EmptyDatabaseGivesComparableStreams) {
  AllocationTrace T;
  Rng R(12);
  uint32_t Chain = T.internChain(CallChain{1});
  for (int I = 0; I < 5000; ++I)
    T.append({static_cast<uint64_t>(R.nextInRange(32, 3000)), 48, Chain, 2});
  SiteDatabase Empty(SiteKeyPolicy::completeChain(), 32768);
  LocalityResult Result = compareLocality(T, Empty);
  // Nothing is arena-allocated: both allocators produce first-fit-like
  // streams, so miss rates are close.
  EXPECT_NEAR(Result.ArenaMissPercent, Result.FirstFitMissPercent, 2.0);
}

TEST(PageSimTest, ResidentPagesHitUntilEvicted) {
  PageSim::Config Cfg;
  Cfg.PageBytes = 4096;
  Cfg.MemoryPages = 2;
  PageSim P(Cfg);
  EXPECT_TRUE(P.access(0));        // Fault page 0.
  EXPECT_FALSE(P.access(100));     // Same page: hit.
  EXPECT_TRUE(P.access(4096));     // Fault page 1.
  EXPECT_FALSE(P.access(0));       // Still resident.
  EXPECT_TRUE(P.access(8192));     // Fault page 2: evicts LRU (page 1).
  EXPECT_TRUE(P.access(4096));     // Page 1 was evicted.
  EXPECT_EQ(P.faults(), 4u);
}

TEST(PageSimTest, LruOrderUpdatedOnHit) {
  PageSim::Config Cfg;
  Cfg.MemoryPages = 2;
  PageSim P(Cfg);
  P.access(0);
  P.access(4096);
  P.access(0);        // Page 0 becomes MRU.
  P.access(8192);     // Evicts page 1, not page 0.
  EXPECT_FALSE(P.access(0));
  EXPECT_TRUE(P.access(4096));
}

TEST(PageSimTest, FaultRatePercent) {
  PageSim P;
  P.access(0);
  P.access(0);
  P.access(0);
  P.access(0);
  EXPECT_DOUBLE_EQ(P.faultRatePercent(), 25.0);
}

TEST(LocalityExperimentTest, ArenaReducesPageFaultsOnChurn) {
  AllocationTrace T;
  Rng R(21);
  uint32_t ShortChain = T.internChain(CallChain{1, 2});
  uint32_t LongChain = T.internChain(CallChain{1, 3});
  for (int I = 0; I < 60000; ++I) {
    if (R.nextBool(0.9))
      T.append({static_cast<uint64_t>(R.nextInRange(32, 3000)), 48,
                ShortChain, 4});
    else
      T.append({static_cast<uint64_t>(R.nextInRange(200000, 2000000)), 64,
                LongChain, 2});
  }
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);
  PagingOptions Options;
  Options.Memory.MemoryPages = 16; // 64 KB resident set.
  PagingResult Result = comparePaging(T, DB, Options);
  EXPECT_GT(Result.Accesses, 100000u);
  EXPECT_LT(Result.ArenaFaultPercent, Result.FirstFitFaultPercent);
}

TEST(CacheSimTest, DirectMappedConflictThrash) {
  // Hand-computed: 1-way, 4 sets of 32-byte lines (128 B total).  Two
  // addresses 128 bytes apart map to the same set and evict each other on
  // every access: 6 accesses, 6 misses, 0 hits.
  CacheSim::Config Cfg;
  Cfg.CacheBytes = 128;
  Cfg.LineBytes = 32;
  Cfg.Ways = 1;
  CacheSim C(Cfg);
  for (int I = 0; I < 3; ++I) {
    C.access(0);
    C.access(128);
  }
  EXPECT_EQ(C.misses(), 6u);
  EXPECT_EQ(C.hits(), 0u);
  // The same pair in a 2-way cache coexists: 2 cold misses then 4 hits.
  Cfg.Ways = 2;
  CacheSim C2(Cfg);
  for (int I = 0; I < 3; ++I) {
    C2.access(0);
    C2.access(128);
  }
  EXPECT_EQ(C2.misses(), 2u);
  EXPECT_EQ(C2.hits(), 4u);
}

TEST(PageSimTest, SequentialSweepFaultCountExact) {
  // Hand-computed: a 64 KB sweep at 256-byte stride touches 16 distinct
  // 4 KB pages; with a 32-page budget nothing is evicted, so the second
  // sweep is all hits: 16 faults out of 512 accesses.
  PageSim P;
  for (int Pass = 0; Pass < 2; ++Pass)
    for (uint64_t Addr = 0; Addr < 65536; Addr += 256)
      P.access(Addr);
  EXPECT_EQ(P.faults(), 16u);
  EXPECT_EQ(P.accesses(), 512u);
  EXPECT_DOUBLE_EQ(P.faultRatePercent(), 100.0 * 16 / 512);
}

TEST(LocalityFuzzTest, FuzzProfilesExerciseCacheAndPagingSims) {
  // Generated adversarial traces must flow through both locality sims
  // without violating their accounting: identical access counts for both
  // streams, rates within [0, 100], and totals that add up.
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  for (FuzzProfile Profile :
       {FuzzProfile::Fragmentation, FuzzProfile::Burst, FuzzProfile::Mixed}) {
    AllocationTrace T = generateFuzzTrace(Profile, 77, 400);
    SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);
    LocalityResult Cache = compareLocality(T, DB);
    EXPECT_GT(Cache.Accesses, 0u) << profileName(Profile);
    EXPECT_GE(Cache.FirstFitMissPercent, 0.0);
    EXPECT_LE(Cache.FirstFitMissPercent, 100.0);
    EXPECT_GE(Cache.ArenaMissPercent, 0.0);
    EXPECT_LE(Cache.ArenaMissPercent, 100.0);
    PagingResult Paging = comparePaging(T, DB);
    EXPECT_EQ(Paging.Accesses, Cache.Accesses) << profileName(Profile);
    EXPECT_GE(Paging.FirstFitFaultPercent, 0.0);
    EXPECT_LE(Paging.FirstFitFaultPercent, 100.0);
    EXPECT_GE(Paging.ArenaFaultPercent, 0.0);
    EXPECT_LE(Paging.ArenaFaultPercent, 100.0);
  }
}
