//===- tests/locality_test.cpp - Cache simulator tests ---------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Trainer.h"
#include "locality/CacheSim.h"
#include "locality/LocalityExperiment.h"
#include "locality/PageSim.h"
#include "support/Random.h"

#include "gtest/gtest.h"

using namespace lifepred;

TEST(CacheSimTest, RepeatAccessHits) {
  CacheSim C;
  EXPECT_FALSE(C.access(0x1000)); // Cold miss.
  EXPECT_TRUE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1010)); // Same 32-byte line.
  EXPECT_EQ(C.hits(), 2u);
  EXPECT_EQ(C.misses(), 1u);
}

TEST(CacheSimTest, DistinctLinesMiss) {
  CacheSim C;
  EXPECT_FALSE(C.access(0x1000));
  EXPECT_FALSE(C.access(0x1020)); // Next line.
  EXPECT_EQ(C.misses(), 2u);
}

TEST(CacheSimTest, LruEvictionWithinSet) {
  CacheSim::Config Cfg;
  Cfg.CacheBytes = 128; // 2 sets of 2 ways at 32-byte lines.
  Cfg.LineBytes = 32;
  Cfg.Ways = 2;
  CacheSim C(Cfg);
  // Three lines mapping to set 0 (stride = 2 lines * 32 = 64 bytes).
  C.access(0);   // Miss; way 0.
  C.access(64);  // Miss; way 1.
  C.access(0);   // Hit; 64 becomes LRU.
  C.access(128); // Miss; evicts 64.
  EXPECT_TRUE(C.access(0));
  EXPECT_FALSE(C.access(64)); // Was evicted.
}

TEST(CacheSimTest, WorkingSetWithinCacheEventuallyAllHits) {
  CacheSim C; // 64 KB.
  // A 32 KB working set: after the first sweep everything hits.
  for (uint64_t Pass = 0; Pass < 3; ++Pass)
    for (uint64_t Addr = 0; Addr < 32768; Addr += 32)
      C.access(Addr);
  // 1024 cold misses out of 3072 accesses.
  EXPECT_EQ(C.misses(), 1024u);
  EXPECT_EQ(C.hits(), 2048u);
}

TEST(CacheSimTest, MissRatePercent) {
  CacheSim C;
  C.access(0);
  C.access(0);
  EXPECT_DOUBLE_EQ(C.missRatePercent(), 50.0);
}

TEST(LocalityExperimentTest, ArenaImprovesLocalityOnChurn) {
  // Short-lived churn mixed with long-lived objects: the paper's claim is
  // that confining the churn to the 64 KB arena area lowers miss rates.
  AllocationTrace T;
  Rng R(11);
  uint32_t ShortChain = T.internChain(CallChain{1, 2});
  uint32_t LongChain = T.internChain(CallChain{1, 3});
  for (int I = 0; I < 60000; ++I) {
    if (R.nextBool(0.9))
      T.append({static_cast<uint64_t>(R.nextInRange(32, 3000)), 48,
                ShortChain, 4});
    else
      T.append({static_cast<uint64_t>(R.nextInRange(200000, 2000000)), 64,
                LongChain, 2});
  }
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);
  LocalityResult Result = compareLocality(T, DB);
  EXPECT_GT(Result.Accesses, 100000u);
  EXPECT_LT(Result.ArenaMissPercent, Result.FirstFitMissPercent);
}

TEST(LocalityExperimentTest, EmptyDatabaseGivesComparableStreams) {
  AllocationTrace T;
  Rng R(12);
  uint32_t Chain = T.internChain(CallChain{1});
  for (int I = 0; I < 5000; ++I)
    T.append({static_cast<uint64_t>(R.nextInRange(32, 3000)), 48, Chain, 2});
  SiteDatabase Empty(SiteKeyPolicy::completeChain(), 32768);
  LocalityResult Result = compareLocality(T, Empty);
  // Nothing is arena-allocated: both allocators produce first-fit-like
  // streams, so miss rates are close.
  EXPECT_NEAR(Result.ArenaMissPercent, Result.FirstFitMissPercent, 2.0);
}

TEST(PageSimTest, ResidentPagesHitUntilEvicted) {
  PageSim::Config Cfg;
  Cfg.PageBytes = 4096;
  Cfg.MemoryPages = 2;
  PageSim P(Cfg);
  EXPECT_TRUE(P.access(0));        // Fault page 0.
  EXPECT_FALSE(P.access(100));     // Same page: hit.
  EXPECT_TRUE(P.access(4096));     // Fault page 1.
  EXPECT_FALSE(P.access(0));       // Still resident.
  EXPECT_TRUE(P.access(8192));     // Fault page 2: evicts LRU (page 1).
  EXPECT_TRUE(P.access(4096));     // Page 1 was evicted.
  EXPECT_EQ(P.faults(), 4u);
}

TEST(PageSimTest, LruOrderUpdatedOnHit) {
  PageSim::Config Cfg;
  Cfg.MemoryPages = 2;
  PageSim P(Cfg);
  P.access(0);
  P.access(4096);
  P.access(0);        // Page 0 becomes MRU.
  P.access(8192);     // Evicts page 1, not page 0.
  EXPECT_FALSE(P.access(0));
  EXPECT_TRUE(P.access(4096));
}

TEST(PageSimTest, FaultRatePercent) {
  PageSim P;
  P.access(0);
  P.access(0);
  P.access(0);
  P.access(0);
  EXPECT_DOUBLE_EQ(P.faultRatePercent(), 25.0);
}

TEST(LocalityExperimentTest, ArenaReducesPageFaultsOnChurn) {
  AllocationTrace T;
  Rng R(21);
  uint32_t ShortChain = T.internChain(CallChain{1, 2});
  uint32_t LongChain = T.internChain(CallChain{1, 3});
  for (int I = 0; I < 60000; ++I) {
    if (R.nextBool(0.9))
      T.append({static_cast<uint64_t>(R.nextInRange(32, 3000)), 48,
                ShortChain, 4});
    else
      T.append({static_cast<uint64_t>(R.nextInRange(200000, 2000000)), 64,
                LongChain, 2});
  }
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);
  PagingOptions Options;
  Options.Memory.MemoryPages = 16; // 64 KB resident set.
  PagingResult Result = comparePaging(T, DB, Options);
  EXPECT_GT(Result.Accesses, 100000u);
  EXPECT_LT(Result.ArenaFaultPercent, Result.FirstFitFaultPercent);
}
