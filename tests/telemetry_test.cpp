//===- tests/telemetry_test.cpp - Telemetry subsystem tests ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Covers the observability substrate end to end: Log2Histogram bucket
// boundaries and merge algebra, StatsRegistry merge semantics and the
// jobs-invariance guarantee (per-worker registries merged in task-index
// order are identical at any thread count), golden-output and nesting
// tests for the chrome://tracing TraceEventWriter, the JSON parser that
// backs bench_compare, ReportDiff's value/timing tolerance split and exit
// semantics, HeapTimeline byte-clock sampling, and the SimTelemetry hooks
// of the trace simulators (exported counters match simulator results, and
// instrumentation never perturbs the simulation).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sim/MultiArenaSimulator.h"
#include "sim/SimTelemetry.h"
#include "sim/TraceSimulator.h"
#include "support/Json.h"
#include "support/Random.h"
#include "support/ThreadPool.h"
#include "telemetry/HeapTimeline.h"
#include "telemetry/ReportDiff.h"
#include "telemetry/StatsRegistry.h"
#include "telemetry/TraceEventWriter.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace lifepred;

//===----------------------------------------------------------------------===//
// Log2Histogram
//===----------------------------------------------------------------------===//

TEST(Log2HistogramTest, BucketBoundariesRoundTrip) {
  // Every bucket's own boundaries map back to it.
  for (unsigned B = 0; B < Log2Histogram::BucketCount; ++B) {
    EXPECT_EQ(Log2Histogram::bucketIndex(Log2Histogram::bucketLow(B)), B);
    EXPECT_EQ(Log2Histogram::bucketIndex(Log2Histogram::bucketHigh(B)), B);
  }
  // Buckets tile the uint64 range with no gaps or overlaps.
  EXPECT_EQ(Log2Histogram::bucketLow(0), 0u);
  EXPECT_EQ(Log2Histogram::bucketHigh(0), 0u);
  for (unsigned B = 1; B < Log2Histogram::BucketCount; ++B)
    EXPECT_EQ(Log2Histogram::bucketLow(B),
              Log2Histogram::bucketHigh(B - 1) + 1);
  EXPECT_EQ(Log2Histogram::bucketHigh(Log2Histogram::BucketCount - 1),
            ~uint64_t(0));
  // Spot checks: 0 is its own bucket, powers of two start new buckets.
  EXPECT_EQ(Log2Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(Log2Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(Log2Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(Log2Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(Log2Histogram::bucketIndex(4), 3u);
  EXPECT_EQ(Log2Histogram::bucketIndex(1024), 11u);
}

TEST(Log2HistogramTest, RecordTracksStatistics) {
  Log2Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.min(), 0u); // Empty histogram reports 0, not UINT64_MAX.
  EXPECT_EQ(H.max(), 0u);
  EXPECT_DOUBLE_EQ(H.mean(), 0.0);

  for (uint64_t Value : {uint64_t(0), uint64_t(1), uint64_t(7),
                         uint64_t(1024)})
    H.record(Value);
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 1032u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1024u);
  EXPECT_DOUBLE_EQ(H.mean(), 258.0);
  EXPECT_EQ(H.bucketCount(0), 1u);  // 0
  EXPECT_EQ(H.bucketCount(1), 1u);  // 1
  EXPECT_EQ(H.bucketCount(3), 1u);  // 7 in [4, 7]
  EXPECT_EQ(H.bucketCount(11), 1u); // 1024 in [1024, 2047]
  EXPECT_EQ(H.bucketCount(2), 0u);
}

TEST(Log2HistogramTest, MergeMatchesDirectRecording) {
  Rng R(42);
  Log2Histogram Whole, PartA, PartB;
  for (int I = 0; I < 1000; ++I) {
    uint64_t Value = R.nextBelow(uint64_t(1) << (1 + R.nextBelow(40)));
    Whole.record(Value);
    (I % 2 ? PartA : PartB).record(Value);
  }
  Log2Histogram Merged = PartB;
  Merged.merge(PartA);
  EXPECT_TRUE(Merged == Whole);

  // Merging an empty histogram is the identity.
  Log2Histogram Empty;
  Merged.merge(Empty);
  EXPECT_TRUE(Merged == Whole);

  // Merge order does not matter.
  Log2Histogram Other = PartA;
  Other.merge(PartB);
  EXPECT_TRUE(Other == Merged);
}

TEST(Log2HistogramTest, QuantileLowerBoundConvention) {
  // Empty histograms report 0 for every quantile.
  EXPECT_EQ(Log2Histogram().quantileLowerBound(0.5), 0u);

  // The quantile is the lower bound of the bucket holding the rank
  // ceil(Phi * count); with values {0, 1, 7, 1024} the ranks 1..4 land in
  // buckets {0}, {1}, [4,7], [1024,2047].
  Log2Histogram H;
  for (uint64_t Value : {uint64_t(0), uint64_t(1), uint64_t(7),
                         uint64_t(1024)})
    H.record(Value);
  EXPECT_EQ(H.quantileLowerBound(0.25), 0u);
  EXPECT_EQ(H.quantileLowerBound(0.50), 1u);
  EXPECT_EQ(H.quantileLowerBound(0.75), 4u);
  EXPECT_EQ(H.quantileLowerBound(1.0), 1024u);
  // Phi clamps into (0, 1]: below the first rank and above the last.
  EXPECT_EQ(H.quantileLowerBound(0.0), 0u);
  EXPECT_EQ(H.quantileLowerBound(2.0), 1024u);

  // A single value reports its bucket's lower bound, not the value itself
  // (the audit report's obs_p50 convention).
  Log2Histogram Single;
  Single.record(16100);
  EXPECT_EQ(Single.quantileLowerBound(0.5), 8192u);
}

//===----------------------------------------------------------------------===//
// StatsRegistry
//===----------------------------------------------------------------------===//

TEST(StatsRegistryTest, MetricsCreateOnFirstUse) {
  StatsRegistry Reg;
  EXPECT_EQ(Reg.metricCount(), 0u);
  Reg.counter("a.count") += 3;
  Reg.gauge("a.peak") = 7;
  Reg.histogram("a.sizes").record(16);
  EXPECT_EQ(Reg.metricCount(), 3u);
  // Repeated access returns the same metric, not a new one.
  Reg.counter("a.count") += 1;
  EXPECT_EQ(Reg.counters().at("a.count"), 4u);
  EXPECT_EQ(Reg.metricCount(), 3u);
}

TEST(StatsRegistryTest, ReferencesStayValidAcrossInsertions) {
  // The attach-once contract: consumers resolve a counter to uint64_t&
  // at attach time and increment it from the hot path; later metric
  // creation must not invalidate it.
  StatsRegistry Reg;
  uint64_t &Hot = Reg.counter("hot");
  Log2Histogram *Hist = &Reg.histogram("hist");
  for (int I = 0; I < 200; ++I)
    Reg.counter("filler." + std::to_string(I)) += 1;
  ++Hot;
  Hist->record(5);
  EXPECT_EQ(Reg.counters().at("hot"), 1u);
  EXPECT_EQ(Reg.histograms().at("hist").count(), 1u);
}

TEST(StatsRegistryTest, MergeAddsCountersMaxesGaugesMergesHistograms) {
  StatsRegistry A, B;
  A.counter("shared") = 10;
  B.counter("shared") = 32;
  B.counter("only_b") = 5;
  A.gauge("peak") = 100;
  B.gauge("peak") = 60;
  B.gauge("only_b_peak") = 9;
  A.histogram("h").record(4);
  B.histogram("h").record(1024);

  A.merge(B);
  EXPECT_EQ(A.counters().at("shared"), 42u);
  EXPECT_EQ(A.counters().at("only_b"), 5u);
  EXPECT_EQ(A.gauges().at("peak"), 100u); // Max, not sum.
  EXPECT_EQ(A.gauges().at("only_b_peak"), 9u);
  EXPECT_EQ(A.histograms().at("h").count(), 2u);
  EXPECT_EQ(A.histograms().at("h").min(), 4u);
  EXPECT_EQ(A.histograms().at("h").max(), 1024u);
}

namespace {

/// Deterministic per-task metric load for the jobs-invariance test: task
/// \p Index contributes values derived only from its index.
void fillTaskRegistry(StatsRegistry &Reg, size_t Index) {
  Rng R(0x5eed + Index);
  Reg.counter("events") += 100 + Index;
  Reg.gauge("peak_bytes") =
      (Index * 7919) % 1000; // Different per task; merge takes the max.
  Log2Histogram &H = Reg.histogram("sizes");
  for (int I = 0; I < 500; ++I)
    H.record(R.nextBelow(1 << 20));
}

/// Runs \p TaskCount metric-producing tasks on a pool of \p Jobs threads
/// and merges the per-task registries in task-index order.
StatsRegistry mergedAtJobCount(unsigned Jobs, size_t TaskCount) {
  ThreadPool Pool(Jobs);
  std::vector<StatsRegistry> PerTask(TaskCount);
  parallelForIndex(Pool, TaskCount,
                   [&](size_t Index) { fillTaskRegistry(PerTask[Index], Index); });
  StatsRegistry Merged;
  for (const StatsRegistry &Reg : PerTask)
    Merged.merge(Reg);
  return Merged;
}

} // namespace

TEST(StatsRegistryTest, MergedRegistriesIdenticalAtAnyJobCount) {
  // The no-lock design's central claim: each worker owns a registry, and
  // merging them at the join point in task-index order gives bit-identical
  // results no matter how many threads executed the tasks.
  const size_t TaskCount = 16;
  StatsRegistry Serial = mergedAtJobCount(1, TaskCount);
  StatsRegistry TwoJobs = mergedAtJobCount(2, TaskCount);
  StatsRegistry EightJobs = mergedAtJobCount(8, TaskCount);
  EXPECT_TRUE(Serial == TwoJobs);
  EXPECT_TRUE(Serial == EightJobs);
  EXPECT_EQ(Serial.counters().at("events"),
            100u * TaskCount + TaskCount * (TaskCount - 1) / 2);
}

TEST(StatsRegistryTest, WriteJsonIsValidAndComplete) {
  StatsRegistry Reg;
  Reg.counter("ff.allocs") = 12;
  Reg.counter("ff.frees") = 11;
  Reg.gauge("ff.max_heap") = 4096;
  Log2Histogram &H = Reg.histogram("ff.scan_len");
  H.record(0);
  H.record(3);
  H.record(3);

  std::string Out;
  Reg.writeJson(Out, "  ");
  std::optional<JsonValue> Doc = parseJson(Out);
  ASSERT_TRUE(Doc.has_value()) << Out;

  const JsonValue *Counters = Doc->find("counters");
  ASSERT_TRUE(Counters && Counters->isObject());
  EXPECT_DOUBLE_EQ(Counters->numberOr("ff.allocs", -1), 12.0);
  EXPECT_DOUBLE_EQ(Counters->numberOr("ff.frees", -1), 11.0);

  const JsonValue *Gauges = Doc->find("gauges");
  ASSERT_TRUE(Gauges && Gauges->isObject());
  EXPECT_DOUBLE_EQ(Gauges->numberOr("ff.max_heap", -1), 4096.0);

  const JsonValue *Histograms = Doc->find("histograms");
  ASSERT_TRUE(Histograms && Histograms->isObject());
  const JsonValue *Hist = Histograms->find("ff.scan_len");
  ASSERT_TRUE(Hist && Hist->isObject());
  EXPECT_DOUBLE_EQ(Hist->numberOr("count", -1), 3.0);
  EXPECT_DOUBLE_EQ(Hist->numberOr("sum", -1), 6.0);
  EXPECT_DOUBLE_EQ(Hist->numberOr("min", -1), 0.0);
  EXPECT_DOUBLE_EQ(Hist->numberOr("max", -1), 3.0);
  // Buckets are sparse [low, count] rows whose counts sum to the total.
  const JsonValue *Buckets = Hist->find("buckets");
  ASSERT_TRUE(Buckets && Buckets->isArray());
  double BucketTotal = 0;
  for (const JsonValue &Row : Buckets->array()) {
    ASSERT_TRUE(Row.isArray());
    ASSERT_EQ(Row.array().size(), 2u);
    BucketTotal += Row.array()[1].number();
  }
  EXPECT_DOUBLE_EQ(BucketTotal, 3.0);
}

TEST(StatsRegistryTest, HistogramJsonEmitsQuantileSummaries) {
  // 50 values in [2,3], 40 in [64,127], 10 in [4096,8191]: the p50/p90/p99
  // lower bounds are the respective bucket floors — integers a baseline
  // can gate at exact tolerance.
  StatsRegistry Reg;
  Log2Histogram &H = Reg.histogram("lat");
  for (int I = 0; I < 50; ++I)
    H.record(3);
  for (int I = 0; I < 40; ++I)
    H.record(100);
  for (int I = 0; I < 10; ++I)
    H.record(5000);

  std::string Out;
  Reg.writeJson(Out, "  ");
  std::optional<JsonValue> Doc = parseJson(Out);
  ASSERT_TRUE(Doc.has_value()) << Out;
  const JsonValue *Hist = Doc->find("histograms")->find("lat");
  ASSERT_TRUE(Hist && Hist->isObject());
  EXPECT_DOUBLE_EQ(Hist->numberOr("p50", -1), 2.0);
  EXPECT_DOUBLE_EQ(Hist->numberOr("p90", -1), 64.0);
  EXPECT_DOUBLE_EQ(Hist->numberOr("p99", -1), 4096.0);
}

//===----------------------------------------------------------------------===//
// TraceEventWriter
//===----------------------------------------------------------------------===//

namespace {

/// A clock that returns 10, 20, 30, ... so golden output is deterministic.
TraceEventWriter::ClockFn tickingClock() {
  auto Next = std::make_shared<std::atomic<uint64_t>>(0);
  return [Next]() -> uint64_t { return Next->fetch_add(10) + 10; };
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

} // namespace

TEST(TraceEventWriterTest, GoldenJson) {
  TraceEventWriter Writer(tempPath("golden_trace.json"), tickingClock());
  Writer.beginSpan("train", "sim");
  Writer.instant("mark", "sim");
  Writer.endSpan();
  EXPECT_EQ(Writer.eventCount(), 3u);
  EXPECT_EQ(Writer.toJson(),
            "{\"traceEvents\": [\n"
            "  {\"ph\": \"B\", \"name\": \"train\", \"cat\": \"sim\", "
            "\"pid\": 1, \"tid\": 0, \"ts\": 10},\n"
            "  {\"ph\": \"i\", \"name\": \"mark\", \"cat\": \"sim\", "
            "\"s\": \"t\", \"pid\": 1, \"tid\": 0, \"ts\": 20},\n"
            "  {\"ph\": \"E\", \"pid\": 1, \"tid\": 0, \"ts\": 30}\n"
            "], \"displayTimeUnit\": \"ms\"}\n");
}

TEST(TraceEventWriterTest, EmptyWriterStillEmitsValidJson) {
  TraceEventWriter Writer(tempPath("empty_trace.json"), tickingClock());
  std::string Json = Writer.toJson();
  std::optional<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc.has_value()) << Json;
  const JsonValue *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  EXPECT_TRUE(Events->array().empty());
}

TEST(TraceEventWriterTest, OpenSpansAutoCloseAtSerialization) {
  TraceEventWriter Writer(tempPath("open_trace.json"), tickingClock());
  Writer.beginSpan("outer"); // ts 10
  Writer.beginSpan("inner"); // ts 20
  std::string Json = Writer.toJson(); // Now = 30; both spans closed there.
  std::optional<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc.has_value()) << Json;
  const JsonValue *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  ASSERT_EQ(Events->array().size(), 4u);
  for (size_t I : {size_t(2), size_t(3)}) {
    const JsonValue &E = Events->array()[I];
    EXPECT_EQ(E.find("ph")->string(), "E");
    EXPECT_DOUBLE_EQ(E.numberOr("ts", -1), 30.0);
  }
}

TEST(TraceEventWriterTest, UnbalancedEndSpanIsDropped) {
  TraceEventWriter Writer(tempPath("unbalanced_trace.json"), tickingClock());
  Writer.endSpan(); // No open span: must not record an orphan "E".
  EXPECT_EQ(Writer.eventCount(), 0u);
  Writer.beginSpan("x");
  Writer.endSpan();
  Writer.endSpan(); // Extra end, dropped again.
  EXPECT_EQ(Writer.eventCount(), 2u);
}

TEST(TraceEventWriterTest, SpansNestPerThread) {
  TraceEventWriter Writer(tempPath("mt_trace.json"), tickingClock());
  const unsigned ThreadCount = 4;
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < ThreadCount; ++I)
    Threads.emplace_back([&Writer] {
      Writer.beginSpan("outer", "replay");
      Writer.instant("tick", "replay");
      Writer.beginSpan("inner", "replay");
      Writer.endSpan();
      Writer.endSpan();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Writer.eventCount(), ThreadCount * 5u);

  std::optional<JsonValue> Doc = parseJson(Writer.toJson());
  ASSERT_TRUE(Doc.has_value());
  const JsonValue *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());

  // Per tid, "B"/"E" events must be well nested: depth never goes
  // negative and every span is closed by the end.
  std::map<unsigned, int> Depth;
  for (const JsonValue &E : Events->array()) {
    unsigned Tid = static_cast<unsigned>(E.numberOr("tid", 999));
    const std::string &Phase = E.find("ph")->string();
    if (Phase == "B")
      ++Depth[Tid];
    else if (Phase == "E") {
      --Depth[Tid];
      EXPECT_GE(Depth[Tid], 0) << "unbalanced E on tid " << Tid;
    }
  }
  EXPECT_EQ(Depth.size(), size_t(ThreadCount)); // Distinct tid per thread.
  for (const auto &[Tid, D] : Depth)
    EXPECT_EQ(D, 0) << "span left open on tid " << Tid;
}

TEST(TraceEventWriterTest, CloseWritesParseableFileOnce) {
  std::string Path = tempPath("closed_trace.json");
  {
    TraceEventWriter Writer(Path, tickingClock());
    TraceSpan Span(&Writer, "phase");
    { TraceSpan Inner(&Writer, "step", "replay"); }
    // Destructor closes the writer and writes the file.
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::optional<JsonValue> Doc = parseJson(Buffer.str());
  ASSERT_TRUE(Doc.has_value());
  const JsonValue *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  EXPECT_EQ(Events->array().size(), 4u);
  EXPECT_EQ(Doc->find("displayTimeUnit")->string(), "ms");
}

TEST(TraceEventWriterTest, CompleteAndInstantAtUseExplicitTimestamps) {
  // The arena-occupancy exporter emits 'X' complete events and instants
  // with caller-supplied byte-clock timestamps on synthetic tracks — no
  // wall clock, no per-thread span stack.
  TraceEventWriter Writer(tempPath("complete_trace.json"), tickingClock());
  Writer.complete("fill", "arena", 100, 500, 250);
  Writer.instantAt("reset", "arena", 100, 750);
  EXPECT_EQ(Writer.eventCount(), 2u);

  std::optional<JsonValue> Doc = parseJson(Writer.toJson());
  ASSERT_TRUE(Doc.has_value());
  const JsonValue *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  ASSERT_EQ(Events->array().size(), 2u);
  const JsonValue &Complete = Events->array()[0];
  EXPECT_EQ(Complete.find("ph")->string(), "X");
  EXPECT_DOUBLE_EQ(Complete.numberOr("ts", -1), 500.0);
  EXPECT_DOUBLE_EQ(Complete.numberOr("dur", -1), 250.0);
  EXPECT_DOUBLE_EQ(Complete.numberOr("tid", -1), 100.0);
  const JsonValue &Instant = Events->array()[1];
  EXPECT_EQ(Instant.find("ph")->string(), "i");
  EXPECT_DOUBLE_EQ(Instant.numberOr("ts", -1), 750.0);
  EXPECT_DOUBLE_EQ(Instant.numberOr("tid", -1), 100.0);
}

TEST(TraceEventWriterTest, NullTraceSpanIsNoOp) {
  // Instrumented code paths pass nullptr when tracing is off; the RAII
  // guard must be inert.
  TraceSpan Span(nullptr, "ignored");
  TraceSpan Inner(nullptr, "also-ignored", "replay");
}

//===----------------------------------------------------------------------===//
// Json parser
//===----------------------------------------------------------------------===//

TEST(JsonTest, ParsesScalarsAndStructures) {
  std::optional<JsonValue> Doc = parseJson(
      " {\"a\": 1.5, \"b\": \"x\\ny\", \"c\": [1, -2e2, true, null], "
      "\"d\": {\"e\": -3}, \"u\": \"\\u0041\"} ");
  ASSERT_TRUE(Doc.has_value());
  ASSERT_TRUE(Doc->isObject());
  EXPECT_DOUBLE_EQ(Doc->numberOr("a", 0), 1.5);
  EXPECT_EQ(Doc->find("b")->string(), "x\ny");
  const JsonValue *C = Doc->find("c");
  ASSERT_TRUE(C && C->isArray());
  ASSERT_EQ(C->array().size(), 4u);
  EXPECT_DOUBLE_EQ(C->array()[0].number(), 1.0);
  EXPECT_DOUBLE_EQ(C->array()[1].number(), -200.0);
  EXPECT_TRUE(C->array()[2].boolean());
  EXPECT_EQ(C->array()[3].kind(), JsonValue::Kind::Null);
  EXPECT_DOUBLE_EQ(Doc->find("d")->numberOr("e", 0), -3.0);
  EXPECT_EQ(Doc->find("u")->string(), "A");
  EXPECT_EQ(Doc->find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(Doc->numberOr("missing", 7.0), 7.0);
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(parseJson("").has_value());
  EXPECT_FALSE(parseJson("{").has_value());
  EXPECT_FALSE(parseJson("{\"a\":}").has_value());
  EXPECT_FALSE(parseJson("[1, 2,]").has_value());
  EXPECT_FALSE(parseJson("\"unterminated").has_value());
  EXPECT_FALSE(parseJson("{} trailing").has_value());
  EXPECT_FALSE(parseJson("{\"a\": 1} {\"b\": 2}").has_value());
}

TEST(JsonTest, EscapingRoundTrips) {
  std::string Out;
  appendJsonEscaped(Out, "a\"b\\c\nd\te\x01"
                         "f");
  EXPECT_EQ(Out, "a\\\"b\\\\c\\nd\\te\\u0001f");
  std::optional<JsonValue> Doc = parseJson("\"" + Out + "\"");
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->string(), "a\"b\\c\nd\te\x01"
                           "f");
}

//===----------------------------------------------------------------------===//
// ReportDiff
//===----------------------------------------------------------------------===//

namespace {

/// A minimal schema-v2 report with one value of each metric class.
std::string makeReport(double Events, double WallSeconds, double MaxHeap,
                       double CounterX, const std::string &GitSha = "abc123") {
  std::ostringstream Out;
  Out << "{\n  \"schema_version\": 2,\n  \"bench\": \"unit\",\n"
      << "  \"manifest\": {\"git_sha\": \"" << GitSha
      << "\", \"jobs\": 1},\n"
      << "  \"events\": " << Events << ",\n  \"wall_seconds\": "
      << WallSeconds << ",\n  \"events_per_sec\": "
      << (WallSeconds > 0 ? Events / WallSeconds : 0) << ",\n"
      << "  \"values\": {\"max_heap\": " << MaxHeap << "},\n"
      << "  \"telemetry\": {\"counters\": {\"x\": " << CounterX
      << "}, \"gauges\": {},\n"
      << "  \"histograms\": {\"h\": {\"count\": 4, \"sum\": 10}}}\n}\n";
  return Out.str();
}

JsonValue parsed(const std::string &Text) {
  std::optional<JsonValue> Doc = parseJson(Text);
  EXPECT_TRUE(Doc.has_value());
  return Doc ? *Doc : JsonValue::makeNull();
}

} // namespace

TEST(ReportDiffTest, IdenticalReportsAreOk) {
  JsonValue Report = parsed(makeReport(1000, 2.0, 4096, 17));
  DiffResult Result = diffReports(Report, Report);
  EXPECT_TRUE(Result.ok());
  EXPECT_TRUE(Result.Drifted.empty());
  EXPECT_TRUE(Result.MissingInNew.empty());
  EXPECT_TRUE(Result.Notes.empty());
  // Value metrics compared: events, values.max_heap, counters.x, and the
  // histogram's count and sum.  Timing metrics are skipped by default.
  EXPECT_EQ(Result.Compared, 5u);
}

TEST(ReportDiffTest, ValueDriftIsRegression) {
  JsonValue Old = parsed(makeReport(1000, 2.0, 4096, 17));
  JsonValue New = parsed(makeReport(1000, 2.0, 4096, 18));
  DiffResult Result = diffReports(Old, New);
  EXPECT_FALSE(Result.ok());
  ASSERT_EQ(Result.Drifted.size(), 1u);
  EXPECT_EQ(Result.Drifted[0].Key, "telemetry.counters.x");
  EXPECT_FALSE(Result.Drifted[0].Timing);
  // A generous tolerance admits the same drift.
  DiffOptions Loose;
  Loose.ValueTolerance = 0.10;
  EXPECT_TRUE(diffReports(Old, New, Loose).ok());
}

TEST(ReportDiffTest, TimingDriftIgnoredUnlessOptedIn) {
  JsonValue Old = parsed(makeReport(1000, 2.0, 4096, 17));
  JsonValue New = parsed(makeReport(1000, 4.0, 4096, 17)); // 2x slower.
  EXPECT_TRUE(diffReports(Old, New).ok());
  DiffOptions WithTime;
  WithTime.TimeTolerance = 0.25;
  DiffResult Result = diffReports(Old, New, WithTime);
  EXPECT_FALSE(Result.ok());
  for (const MetricDrift &Drift : Result.Drifted)
    EXPECT_TRUE(Drift.Timing) << Drift.Key;
}

TEST(ReportDiffTest, MissingMetricIsRegressionNewMetricIsNot) {
  JsonValue Old = parsed(makeReport(1000, 2.0, 4096, 17));
  // New report dropped counter x but gained counter y.
  JsonValue New = parsed(
      "{\"schema_version\": 2, \"events\": 1000, \"wall_seconds\": 2.0,"
      " \"events_per_sec\": 500, \"values\": {\"max_heap\": 4096},"
      " \"telemetry\": {\"counters\": {\"y\": 1}, \"gauges\": {},"
      " \"histograms\": {\"h\": {\"count\": 4, \"sum\": 10}}}}");
  DiffResult Result = diffReports(Old, New);
  EXPECT_FALSE(Result.ok());
  ASSERT_EQ(Result.MissingInNew.size(), 1u);
  EXPECT_EQ(Result.MissingInNew[0], "telemetry.counters.x");
  ASSERT_EQ(Result.OnlyInNew.size(), 1u);
  EXPECT_EQ(Result.OnlyInNew[0], "telemetry.counters.y");
}

TEST(ReportDiffTest, ManifestAndSchemaDifferencesAreNotesOnly) {
  JsonValue Old = parsed(makeReport(1000, 2.0, 4096, 17, "abc123"));
  JsonValue New = parsed(makeReport(1000, 2.0, 4096, 17, "def456"));
  DiffResult Result = diffReports(Old, New);
  EXPECT_TRUE(Result.ok()); // Provenance differs; metrics do not.
  ASSERT_EQ(Result.Notes.size(), 1u);
  EXPECT_NE(Result.Notes[0].find("manifest.git_sha"), std::string::npos);
}

TEST(ReportDiffTest, TimingMetricsMatchedByKey) {
  EXPECT_TRUE(isTimingMetric("wall_seconds"));
  EXPECT_TRUE(isTimingMetric("events_per_sec"));
  EXPECT_TRUE(isTimingMetric("values.speedup_vs_ff"));
  EXPECT_FALSE(isTimingMetric("events"));
  EXPECT_FALSE(isTimingMetric("telemetry.counters.arena.resets"));
}

TEST(ReportDiffTest, OnlineMetricsMatchedByKey) {
  EXPECT_TRUE(isOnlineMetric("telemetry.counters.online.arena_bytes"));
  EXPECT_TRUE(isOnlineMetric("values.GAWK.online.retrains"));
  EXPECT_TRUE(isOnlineMetric("values.GAWK.retrain.epochs"));
  EXPECT_FALSE(isOnlineMetric("values.GAWK.static.accuracy_pct"));
  EXPECT_FALSE(isOnlineMetric("wall_seconds"));
}

TEST(ReportDiffTest, OnlineKeysAreValueClassEvenUnderContentionNames) {
  // Online-prediction metrics are deterministic by contract: a drifted
  // online.* counter is a regression at the strict value tolerance even
  // when the key would otherwise match a contention substring, while a
  // latency key inside the family stays in the (default-ignored) timing
  // class.
  auto report = [](double Depth, double Latency) {
    std::ostringstream Out;
    Out << "{\"schema_version\": 2, \"events\": 10, \"wall_seconds\": 1.0,"
        << " \"events_per_sec\": 10, \"values\": {},"
        << " \"telemetry\": {\"counters\": {\"online.queue_depth\": " << Depth
        << ", \"online.window_latency_p99\": " << Latency
        << "}, \"gauges\": {}, \"histograms\": {}}}";
    return Out.str();
  };
  JsonValue Old = parsed(report(8, 100));
  JsonValue DepthDrift = parsed(report(9, 100));
  DiffResult Result = diffReports(Old, DepthDrift);
  EXPECT_FALSE(Result.ok());
  ASSERT_EQ(Result.Drifted.size(), 1u);
  EXPECT_EQ(Result.Drifted[0].Key, "telemetry.counters.online.queue_depth");
  EXPECT_FALSE(Result.Drifted[0].Timing);

  // A plain contention key with the same drift is not compared at all.
  JsonValue OldPlain = parsed(
      "{\"schema_version\": 2, \"events\": 10, \"wall_seconds\": 1.0,"
      " \"events_per_sec\": 10, \"values\": {},"
      " \"telemetry\": {\"counters\": {\"serving.queue_depth\": 8},"
      " \"gauges\": {}, \"histograms\": {}}}");
  JsonValue NewPlain = parsed(
      "{\"schema_version\": 2, \"events\": 10, \"wall_seconds\": 1.0,"
      " \"events_per_sec\": 10, \"values\": {},"
      " \"telemetry\": {\"counters\": {\"serving.queue_depth\": 9},"
      " \"gauges\": {}, \"histograms\": {}}}");
  EXPECT_TRUE(diffReports(OldPlain, NewPlain).ok());

  // Latency drift inside the online family: timing class, ignored by
  // default, flagged as Timing when opted in.
  JsonValue LatencyDrift = parsed(report(8, 200));
  EXPECT_TRUE(diffReports(Old, LatencyDrift).ok());
  DiffOptions WithTime;
  WithTime.TimeTolerance = 0.25;
  DiffResult Timed = diffReports(Old, LatencyDrift, WithTime);
  EXPECT_FALSE(Timed.ok());
  ASSERT_EQ(Timed.Drifted.size(), 1u);
  EXPECT_TRUE(Timed.Drifted[0].Timing);
}

TEST(ReportDiffTest, GlobMatchSemantics) {
  // Literals (dots included) match only themselves, over the whole text.
  EXPECT_TRUE(globMatch("abc", "abc"));
  EXPECT_FALSE(globMatch("abc", "abd"));
  EXPECT_FALSE(globMatch("abc", "ab"));
  EXPECT_FALSE(globMatch("abc", "abcd"));
  EXPECT_TRUE(globMatch("a.c", "a.c"));
  EXPECT_FALSE(globMatch("a.c", "axc")); // '.' is not a wildcard.
  EXPECT_TRUE(globMatch("", ""));
  EXPECT_FALSE(globMatch("", "a"));

  // '?' matches exactly one character.
  EXPECT_TRUE(globMatch("a?c", "abc"));
  EXPECT_FALSE(globMatch("a?c", "ac"));
  EXPECT_FALSE(globMatch("?", ""));

  // '*' matches any run, including the empty one, with backtracking.
  EXPECT_TRUE(globMatch("*", ""));
  EXPECT_TRUE(globMatch("*", "anything"));
  EXPECT_TRUE(globMatch("a*", "a"));
  EXPECT_TRUE(globMatch("a*", "abc"));
  EXPECT_FALSE(globMatch("a*", "ba"));
  EXPECT_TRUE(globMatch("*c", "abc"));
  EXPECT_TRUE(globMatch("a*c", "ac"));
  EXPECT_TRUE(globMatch("a*b*c", "a.x.b.y.c"));
  EXPECT_FALSE(globMatch("a*b*c", "a.x.b.y"));
  EXPECT_TRUE(globMatch("*ab", "aab"));
  EXPECT_TRUE(globMatch("a*ab", "aab"));

  // The intended use: metric-key prefixes.
  EXPECT_TRUE(globMatch("telemetry.counters.audit.*",
                        "telemetry.counters.audit.CFRAC.wasted_bytes"));
  EXPECT_FALSE(globMatch("telemetry.counters.audit.*",
                         "telemetry.gauges.audit.top1.site"));
}

TEST(ReportDiffTest, IgnoreGlobsExcludeMetricsEntirely) {
  JsonValue Old = parsed(makeReport(1000, 2.0, 4096, 17));
  JsonValue New = parsed(makeReport(1000, 2.0, 4096, 18));

  // The drifted counter is excluded, counted as ignored, and no longer
  // compared.
  DiffOptions Ignore;
  Ignore.IgnoreGlobs = {"telemetry.counters.*"};
  DiffResult Result = diffReports(Old, New, Ignore);
  EXPECT_TRUE(Result.ok());
  EXPECT_EQ(Result.Ignored, 1u);
  EXPECT_EQ(Result.Compared, 4u); // One fewer than the unignored diff.

  // Ignoring an unrelated class still catches the drift.
  DiffOptions Unrelated;
  Unrelated.IgnoreGlobs = {"values.*"};
  EXPECT_FALSE(diffReports(Old, New, Unrelated).ok());

  // Ignored keys are exempt from the missing-metric regression too: a
  // report that dropped counter x and gained counter y diffs clean when
  // both are ignored.
  JsonValue Renamed = parsed(
      "{\"schema_version\": 2, \"events\": 1000, \"wall_seconds\": 2.0,"
      " \"events_per_sec\": 500, \"values\": {\"max_heap\": 4096},"
      " \"telemetry\": {\"counters\": {\"y\": 1}, \"gauges\": {},"
      " \"histograms\": {\"h\": {\"count\": 4, \"sum\": 10}}}}");
  DiffOptions IgnoreBoth;
  IgnoreBoth.IgnoreGlobs = {"telemetry.counters.?"};
  DiffResult RenameResult = diffReports(Old, Renamed, IgnoreBoth);
  EXPECT_TRUE(RenameResult.ok());
  EXPECT_TRUE(RenameResult.MissingInNew.empty());
  EXPECT_TRUE(RenameResult.OnlyInNew.empty());
}

TEST(ReportDiffTest, RunBenchCompareIgnoreFlag) {
  std::string OldPath = tempPath("ignore_old.json");
  std::string DriftPath = tempPath("ignore_drift.json");
  { std::ofstream(OldPath) << makeReport(1000, 2.0, 4096, 17); }
  { std::ofstream(DriftPath) << makeReport(1000, 2.0, 4096, 18); }

  EXPECT_EQ(runBenchCompare({OldPath, DriftPath, "--quiet"}), 1);
  EXPECT_EQ(runBenchCompare({OldPath, DriftPath,
                             "--ignore=telemetry.counters.*", "--quiet"}),
            0);
  // A glob that matches nothing changes nothing.
  EXPECT_EQ(runBenchCompare({OldPath, DriftPath, "--ignore=nope.*",
                             "--quiet"}),
            1);
}

TEST(ReportDiffTest, RunBenchCompareExitSemantics) {
  std::string OldPath = tempPath("report_old.json");
  std::string SamePath = tempPath("report_same.json");
  std::string DriftPath = tempPath("report_drift.json");
  { std::ofstream(OldPath) << makeReport(1000, 2.0, 4096, 17); }
  { std::ofstream(SamePath) << makeReport(1000, 2.5, 4096, 17); }
  { std::ofstream(DriftPath) << makeReport(1000, 2.0, 4100, 17); }

  EXPECT_EQ(runBenchCompare({OldPath, SamePath, "--quiet"}), 0);
  EXPECT_EQ(runBenchCompare({OldPath, DriftPath, "--quiet"}), 1);
  // Drift within an explicit tolerance passes.
  EXPECT_EQ(runBenchCompare({OldPath, DriftPath, "--tol=0.01", "--quiet"}),
            0);
  // Usage and IO errors are exit 2, distinct from regressions.
  EXPECT_EQ(runBenchCompare({OldPath}), 2);
  EXPECT_EQ(runBenchCompare({OldPath, SamePath, "--bogus"}), 2);
  EXPECT_EQ(runBenchCompare({OldPath, tempPath("does_not_exist.json"),
                             "--quiet"}),
            2);
}

//===----------------------------------------------------------------------===//
// HeapTimeline
//===----------------------------------------------------------------------===//

TEST(HeapTimelineTest, StrideGatesSampling) {
  HeapTimeline Zero(0);
  EXPECT_EQ(Zero.stride(), 1u); // Stride 0 clamps to 1.

  HeapTimeline T(100);
  EXPECT_TRUE(T.due(0)); // First sample triggers immediately.
  T.record({0, 10, 10, 0, 1});
  EXPECT_FALSE(T.due(99));
  EXPECT_TRUE(T.due(100));
  // A burst past several boundaries records once and skips the missed
  // boundaries instead of back-filling.
  T.record({250, 20, 20, 0, 1});
  EXPECT_FALSE(T.due(299));
  EXPECT_TRUE(T.due(300));
  EXPECT_EQ(T.samples().size(), 2u);
}

TEST(HeapTimelineTest, FragmentationPercent) {
  EXPECT_DOUBLE_EQ((HeapSample{0, 1000, 750, 0, 0}).fragmentationPercent(),
                   25.0);
  EXPECT_DOUBLE_EQ((HeapSample{0, 0, 0, 0, 0}).fragmentationPercent(), 0.0);
  // Live above heap (cannot happen, but must not underflow) clamps to 0.
  EXPECT_DOUBLE_EQ((HeapSample{0, 100, 200, 0, 0}).fragmentationPercent(),
                   0.0);
}

TEST(HeapTimelineTest, ExportAndJson) {
  HeapTimeline T(10);
  T.record({0, 100, 80, 0, 2});
  T.record({10, 200, 100, 0, 5});
  T.record({20, 400, 100, 50, 3});

  StatsRegistry Reg;
  T.exportTelemetry(Reg, "timeline.");
  EXPECT_EQ(Reg.gauges().at("timeline.samples"), 3u);
  EXPECT_EQ(Reg.gauges().at("timeline.peak_free_blocks"), 5u);
  // Peak fragmentation is sample 3's (400-100)/400 = 75%.
  EXPECT_EQ(Reg.gauges().at("timeline.peak_frag_pct"), 75u);

  std::string Out;
  T.writeJson(Out, "  ");
  std::optional<JsonValue> Doc = parseJson(Out);
  ASSERT_TRUE(Doc.has_value()) << Out;
  EXPECT_DOUBLE_EQ(Doc->numberOr("stride_bytes", 0), 10.0);
  const JsonValue *Columns = Doc->find("columns");
  ASSERT_TRUE(Columns && Columns->isArray());
  EXPECT_EQ(Columns->array().size(), 6u);
  const JsonValue *Samples = Doc->find("samples");
  ASSERT_TRUE(Samples && Samples->isArray());
  ASSERT_EQ(Samples->array().size(), 3u);
  for (const JsonValue &Row : Samples->array()) {
    ASSERT_TRUE(Row.isArray());
    EXPECT_EQ(Row.array().size(), Columns->array().size());
  }
  EXPECT_DOUBLE_EQ(Samples->array()[1].array()[1].number(), 200.0);
}

//===----------------------------------------------------------------------===//
// SimTelemetry and simulator export
//===----------------------------------------------------------------------===//

namespace {

/// A trace of mostly short-lived objects from one site plus rare
/// long-lived ones from another (sim_test's shape).
AllocationTrace churnTrace(uint64_t Seed, size_t Objects) {
  AllocationTrace T;
  Rng R(Seed);
  uint32_t ShortChain = T.internChain(CallChain{1, 2});
  uint32_t LongChain = T.internChain(CallChain{1, 3});
  for (size_t I = 0; I < Objects; ++I) {
    if (R.nextBool(0.95))
      T.append({static_cast<uint64_t>(R.nextInRange(8, 2000)), 32,
                ShortChain, 1});
    else
      T.append({static_cast<uint64_t>(R.nextInRange(100000, 400000)), 64,
                LongChain, 1});
  }
  return T;
}

} // namespace

TEST(SimTelemetryTest, PredictionCountsClassifyAndExport) {
  PredictionCounts C;
  C.add(true, true);   // True short.
  C.add(true, true);
  C.add(true, false);  // False short.
  C.add(false, true);  // Missed short.
  C.add(false, false); // True long.
  EXPECT_EQ(C.TrueShort, 2u);
  EXPECT_EQ(C.FalseShort, 1u);
  EXPECT_EQ(C.MissedShort, 1u);
  EXPECT_EQ(C.TrueLong, 1u);
  EXPECT_EQ(C.total(), 5u);
  EXPECT_DOUBLE_EQ(C.accuracyPercent(), 60.0);
  EXPECT_DOUBLE_EQ(PredictionCounts().accuracyPercent(), 0.0);

  StatsRegistry Reg;
  C.exportTelemetry(Reg, "pred.");
  EXPECT_EQ(Reg.counters().at("pred.true_short"), 2u);
  EXPECT_EQ(Reg.counters().at("pred.false_short"), 1u);
  EXPECT_EQ(Reg.counters().at("pred.missed_short"), 1u);
  EXPECT_EQ(Reg.counters().at("pred.true_long"), 1u);
}

TEST(SimTelemetryTest, FirstFitExportMatchesSimResult) {
  AllocationTrace T = churnTrace(21, 20000);
  StatsRegistry Reg;
  HeapTimeline Timeline(64 * 1024);
  SimTelemetry Tel;
  Tel.Registry = &Reg;
  Tel.Timeline = &Timeline;
  BaselineSimResult R = simulateFirstFit(T, {}, {}, &Tel);

  EXPECT_EQ(Reg.counters().at("firstfit.allocs"), R.FirstFit.Allocs);
  EXPECT_EQ(Reg.counters().at("firstfit.frees"), R.FirstFit.Frees);
  EXPECT_EQ(Reg.counters().at("firstfit.search_steps"),
            R.FirstFit.SearchSteps);
  EXPECT_EQ(Reg.gauges().at("firstfit.max_heap_bytes"), R.MaxHeapBytes);
  // Every allocation records one scan-length sample.
  EXPECT_EQ(Reg.histograms().at("firstfit.scan_len").count(),
            R.FirstFit.Allocs);
  EXPECT_EQ(Reg.histograms().at("firstfit.scan_len").sum(),
            R.FirstFit.SearchSteps);
  EXPECT_GT(Timeline.samples().size(), 1u);

  // Instrumentation must not perturb the simulation itself.
  BaselineSimResult Plain = simulateFirstFit(T);
  EXPECT_EQ(Plain.MaxHeapBytes, R.MaxHeapBytes);
  EXPECT_EQ(Plain.MaxLiveBytes, R.MaxLiveBytes);
  EXPECT_TRUE(Plain.FirstFit == R.FirstFit);
}

TEST(SimTelemetryTest, BsdExportMatchesSimResult) {
  AllocationTrace T = churnTrace(22, 20000);
  StatsRegistry Reg;
  SimTelemetry Tel;
  Tel.Registry = &Reg;
  BaselineSimResult R = simulateBsd(T, {}, {}, &Tel);

  EXPECT_EQ(Reg.counters().at("bsd.allocs"), R.Bsd.Allocs);
  EXPECT_EQ(Reg.counters().at("bsd.frees"), R.Bsd.Frees);
  EXPECT_EQ(Reg.counters().at("bsd.page_refills"), R.Bsd.PageRefills);
  // One size-class sample per allocation.
  EXPECT_EQ(Reg.histograms().at("bsd.class_bytes").count(), R.Bsd.Allocs);

  BaselineSimResult Plain = simulateBsd(T);
  EXPECT_EQ(Plain.MaxHeapBytes, R.MaxHeapBytes);
  EXPECT_TRUE(Plain.Bsd == R.Bsd);
}

TEST(SimTelemetryTest, ArenaOutcomesCoverEveryAllocation) {
  AllocationTrace T = churnTrace(23, 30000);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);

  StatsRegistry Reg;
  SimTelemetry Tel;
  Tel.Registry = &Reg;
  ArenaSimResult R = simulateArena(T, DB, 5.0, {}, {}, &Tel);

  // Every allocation event is classified exactly once.
  EXPECT_EQ(Tel.Outcomes.total(), uint64_t(T.size()));
  // The per-site breakdown partitions the aggregate.
  uint64_t PerSiteTotal = 0;
  for (const auto &[Site, Counts] : Tel.PerSite)
    PerSiteTotal += Counts.total();
  EXPECT_EQ(PerSiteTotal, Tel.Outcomes.total());
  EXPECT_EQ(Tel.PerSite.size(), 2u); // churnTrace has two sites.

  // Exported counters mirror the in-memory confusion matrix and the
  // simulator's own counters.
  EXPECT_EQ(Reg.counters().at("arena.pred.true_short"), Tel.Outcomes.TrueShort);
  EXPECT_EQ(Reg.counters().at("arena.pred.false_short"),
            Tel.Outcomes.FalseShort);
  EXPECT_EQ(Reg.gauges().at("arena.pred.sites"), Tel.PerSite.size());
  EXPECT_EQ(Reg.counters().at("arena.arena_allocs"), R.Arena.ArenaAllocs);
  EXPECT_EQ(Reg.counters().at("arena.general_allocs"), R.Arena.GeneralAllocs);
  // The well-trained churn trace predicts nearly everything correctly.
  EXPECT_GT(Tel.Outcomes.accuracyPercent(), 90.0);

  ArenaSimResult Plain = simulateArena(T, DB, 5.0);
  EXPECT_EQ(Plain.MaxHeapBytes, R.MaxHeapBytes);
  EXPECT_TRUE(Plain.Arena == R.Arena);
}

TEST(SimTelemetryTest, MultiArenaOutcomesCoverEveryAllocation) {
  AllocationTrace T = churnTrace(24, 30000);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  ClassDatabase DB =
      trainClassDatabase(profileTrace(T, Policy), Policy, {4096, 32 * 1024});

  StatsRegistry Reg;
  SimTelemetry Tel;
  Tel.Registry = &Reg;
  MultiArenaSimResult R = simulateMultiArena(T, DB, {}, &Tel);

  EXPECT_EQ(Tel.Outcomes.total(), uint64_t(T.size()));
  EXPECT_EQ(Reg.counters().at("multiarena.pred.true_short"),
            Tel.Outcomes.TrueShort);
  EXPECT_EQ(Reg.counters().at("multiarena.general_allocs"), R.GeneralAllocs);
  EXPECT_EQ(Reg.gauges().at("multiarena.pred.sites"), Tel.PerSite.size());

  MultiArenaSimResult Plain = simulateMultiArena(T, DB);
  EXPECT_EQ(Plain.MaxHeapBytes, R.MaxHeapBytes);
  EXPECT_EQ(Plain.GeneralAllocs, R.GeneralAllocs);
  EXPECT_EQ(Plain.GeneralBytes, R.GeneralBytes);
}

//===----------------------------------------------------------------------===//
// Log2Histogram edge cases (observatory satellite tests)
//===----------------------------------------------------------------------===//

TEST(Log2HistogramTest, OverflowBucketHoldsMaxValues) {
  // ~0 has 64 significant bits, so it lands in the last bucket, whose
  // lower bound is 2^63 — the quantile floor for any all-overflow stream.
  const unsigned Last = Log2Histogram::BucketCount - 1;
  EXPECT_EQ(Log2Histogram::bucketIndex(~uint64_t(0)), Last);
  EXPECT_EQ(Log2Histogram::bucketLow(Last), uint64_t(1) << 63);

  Log2Histogram H;
  H.record(~uint64_t(0));
  H.record(~uint64_t(0) - 1);
  EXPECT_EQ(H.bucketCount(Last), 2u);
  EXPECT_EQ(H.max(), ~uint64_t(0));
  EXPECT_EQ(H.quantileLowerBound(0.5), uint64_t(1) << 63);
  EXPECT_EQ(H.quantileLowerBound(1.0), uint64_t(1) << 63);
  // The sum saturates arithmetic concerns aside: two near-2^64 values wrap
  // modulo 2^64, which is fine — sum() is documentation, quantiles gate.
}

TEST(Log2HistogramTest, QuantileLowerBoundEdges) {
  Log2Histogram Empty;
  EXPECT_EQ(Empty.quantileLowerBound(0.5), 0u);

  // A single value: every phi (including the out-of-range ones, which
  // clamp) returns its bucket's lower bound.
  Log2Histogram One;
  One.record(5); // bucket index 3, bucket low 4.
  for (double Phi : {0.0, 0.001, 0.5, 1.0, 2.0})
    EXPECT_EQ(One.quantileLowerBound(Phi), 4u) << "phi=" << Phi;

  // Two buckets: the rank boundary lands exactly between them.
  Log2Histogram Two;
  Two.record(1);   // bucket 1, low 1.
  Two.record(100); // bucket 7, low 64.
  EXPECT_EQ(Two.quantileLowerBound(0.5), 1u);
  EXPECT_EQ(Two.quantileLowerBound(0.51), 64u);
  EXPECT_EQ(Two.quantileLowerBound(1.0), 64u);

  // Zero is its own bucket with lower bound 0.
  Log2Histogram Zero;
  Zero.record(0);
  EXPECT_EQ(Zero.quantileLowerBound(1.0), 0u);
  EXPECT_EQ(Zero.count(), 1u);
}

TEST(Log2HistogramTest, RecordManyMatchesRepeatedRecord) {
  Log2Histogram Bulk, Loop;
  Bulk.recordMany(24, 1000);
  Bulk.recordMany(8192, 3);
  Bulk.recordMany(7, 0); // No-op: zero count must not disturb min/max.
  for (int I = 0; I < 1000; ++I)
    Loop.record(24);
  for (int I = 0; I < 3; ++I)
    Loop.record(8192);
  EXPECT_EQ(Bulk, Loop);
  EXPECT_EQ(Bulk.count(), 1003u);
  EXPECT_EQ(Bulk.sum(), uint64_t(24) * 1000 + uint64_t(8192) * 3);
  EXPECT_EQ(Bulk.min(), 24u);
  EXPECT_EQ(Bulk.max(), 8192u);
}
