//===- tests/threadpool_test.cpp - Bench thread-pool tests -----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// The bench substrate fans simulations out on support/ThreadPool; these
// tests pin down the properties the benches rely on: results come back in
// submission order, task exceptions propagate through futures (lowest
// index first under parallelForIndex), the single-thread pool runs inline,
// and parallel workload generation is bit-identical to serial.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace lifepred;

TEST(ThreadPoolTest, ResultsComeBackInSubmissionOrder) {
  ThreadPool Pool(4);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I < 100; ++I)
    Futures.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Futures[static_cast<size_t>(I)].get(), I * I);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.threadCount(), 1u);
  std::thread::id Main = std::this_thread::get_id();
  bool Ran = false;
  auto Future = Pool.submit([&] {
    Ran = true;
    return std::this_thread::get_id();
  });
  // Inline mode executes during submit, not at get().
  EXPECT_TRUE(Ran);
  EXPECT_EQ(Future.get(), Main);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.threadCount(), 1u);
  EXPECT_EQ(Pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool Pool(4);
  auto Good = Pool.submit([] { return 1; });
  auto Bad = Pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_EQ(Good.get(), 1);
  EXPECT_THROW(Bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> Completed{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 64; ++I)
      Pool.submit([&Completed] { ++Completed; });
    // No explicit join: the destructor must run everything first.
  }
  EXPECT_EQ(Completed.load(), 64);
}

TEST(ParallelForIndexTest, VisitsEveryIndexExactlyOnce) {
  for (unsigned Threads : {1u, 4u}) {
    ThreadPool Pool(Threads);
    std::vector<std::atomic<int>> Visits(1000);
    parallelForIndex(Pool, Visits.size(),
                     [&](size_t Index) { ++Visits[Index]; });
    for (const std::atomic<int> &V : Visits)
      EXPECT_EQ(V.load(), 1);
  }
}

TEST(ParallelForIndexTest, RethrowsLowestIndexFailureAfterJoining) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  try {
    parallelForIndex(Pool, 16, [&](size_t Index) {
      ++Ran;
      if (Index == 3)
        throw std::out_of_range("index 3");
      if (Index == 11)
        throw std::runtime_error("index 11");
    });
    FAIL() << "expected an exception";
  } catch (const std::out_of_range &) {
    // Index 3's exception must win over index 11's, deterministically.
  }
  // The barrier held: every task finished before the rethrow.
  EXPECT_EQ(Ran.load(), 16);
}

TEST(ThreadPoolTest, WorkerIndicesAreStableAndDistinct) {
  // The serving engine keys per-worker state (remote-free node pools,
  // contention counters) by currentWorkerIndex(); that requires every pool
  // thread to carry a distinct index in [0, threadCount) for its lifetime.
  constexpr unsigned Threads = 4;
  ThreadPool Pool(Threads);
  std::vector<std::future<void>> Futures;
  std::vector<unsigned> Seen(Threads, ~0u);
  std::atomic<unsigned> Arrived{0};
  for (unsigned I = 0; I < Threads; ++I)
    Futures.push_back(Pool.submit([&] {
      unsigned Index = ThreadPool::currentWorkerIndex();
      ASSERT_LT(Index, Threads);
      Seen[Index] = Index;
      // Hold every worker until all four tasks are in flight, so the four
      // tasks land on four distinct workers.
      ++Arrived;
      while (Arrived.load() < Threads)
        std::this_thread::yield();
    }));
  for (auto &Future : Futures)
    Future.get();
  for (unsigned I = 0; I < Threads; ++I)
    EXPECT_EQ(Seen[I], I);
}

TEST(ThreadPoolTest, WorkerIndexIsZeroOffPool) {
  // The caller's thread (inline single-thread mode, or test code outside
  // any pool) reads index 0, so W=1 engine runs need no special casing.
  EXPECT_EQ(ThreadPool::currentWorkerIndex(), 0u);
  ThreadPool Pool(1);
  unsigned Inline = ~0u;
  Pool.submit([&] { Inline = ThreadPool::currentWorkerIndex(); }).get();
  EXPECT_EQ(Inline, 0u);
}

TEST(ThreadPoolTest, WorkerSurvivesThrowingTask) {
  // A task that throws must not tear down its worker: the exception goes
  // to the future, and the same worker keeps serving later tasks with its
  // index intact.
  ThreadPool Pool(2);
  auto Bad = Pool.submit([]() -> int { throw std::logic_error("boom"); });
  EXPECT_THROW(Bad.get(), std::logic_error);
  std::atomic<int> Completed{0};
  std::vector<std::future<void>> Futures;
  for (int I = 0; I < 32; ++I)
    Futures.push_back(Pool.submit([&] {
      EXPECT_LT(ThreadPool::currentWorkerIndex(), 2u);
      ++Completed;
    }));
  for (auto &Future : Futures)
    Future.get();
  EXPECT_EQ(Completed.load(), 32);
}

TEST(ParallelForIndexTest, ParallelResultsMatchSerial) {
  // The determinism contract the benches rely on: identical tasks write
  // identical slots no matter how many workers run them.
  auto Compute = [](unsigned Threads) {
    ThreadPool Pool(Threads);
    std::vector<uint64_t> Out(257);
    parallelForIndex(Pool, Out.size(), [&](size_t Index) {
      uint64_t X = 0x9e3779b97f4a7c15ull ^ Index;
      for (int I = 0; I < 1000; ++I)
        X = X * 6364136223846793005ull + 1442695040888963407ull;
      Out[Index] = X;
    });
    return Out;
  };
  EXPECT_EQ(Compute(1), Compute(8));
}
