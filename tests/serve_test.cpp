//===- tests/serve_test.cpp - Multi-tenant serving engine tests ------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Pins down the concurrent serving tier (alloc/ShardedHeap + sim/TenantMux):
// the CAS bitmap free list agrees with the serial BitmapFreeList and
// survives owner-pop/remote-push races; the MPSC remote-free channel
// delivers every node exactly once; the engine's value-class telemetry is
// byte-identical at any worker count; and a W=1 CAS run replayed op-for-op
// into a bitmap-mode BsdAllocator under ShadowBsd agrees address for
// address (the CAS shard is that allocator, made lock-free).
//
//===----------------------------------------------------------------------===//

#include "alloc/BsdAllocator.h"
#include "alloc/ShardedHeap.h"
#include "sim/TenantMux.h"
#include "support/AtomicBitmapFreeList.h"
#include "support/BitmapFreeList.h"
#include "support/ThreadPool.h"
#include "telemetry/StatsRegistry.h"
#include "verify/ShadowHeap.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace lifepred;

namespace {

uint64_t nextRand(uint64_t &State) {
  State = State * 6364136223846793005ull + 1442695040888963407ull;
  return State >> 33;
}

ServeConfig smallConfig() {
  ServeConfig Cfg;
  Cfg.Tenants = 12;
  Cfg.Workers = 2;
  Cfg.Shards = 4;
  Cfg.SliceEvents = 64;
  Cfg.TenantScale = 0.01;
  Cfg.Program = "CFRAC";
  return Cfg;
}

} // namespace

//===----------------------------------------------------------------------===//
// AtomicBitmapFreeList
//===----------------------------------------------------------------------===//

TEST(AtomicBitmapTest, SerialPopOrderMatchesBitmapFreeList) {
  // Single-threaded, the CAS list must be indistinguishable from the
  // serial BitmapFreeList: same lowest-free-address pops, same counts,
  // through an arbitrary interleaving of pops, pushes, and refills.
  constexpr uint64_t BlockBytes = 64;
  constexpr uint64_t BlocksPerExtent = 32;
  constexpr uint64_t Base = uint64_t(1) << 30;
  BitmapFreeList Serial;
  AtomicBitmapFreeList Atomic;
  Serial.configure(BlockBytes, BlocksPerExtent);
  Atomic.configure(BlockBytes, BlocksPerExtent, /*MaxExtents=*/16);

  uint64_t Retries = 0;
  uint64_t Rng = 0x1993;
  std::vector<uint64_t> Live;
  unsigned Extents = 0;
  for (int Op = 0; Op < 4000; ++Op) {
    unsigned Kind = nextRand(Rng) % 3;
    if (Kind != 0 || Live.empty()) {
      if (Serial.empty()) {
        if (Extents == 16)
          continue;
        uint64_t ExtentBase = Base + Extents * BlockBytes * BlocksPerExtent;
        ++Extents;
        Serial.addExtent(ExtentBase);
        Atomic.addExtent(ExtentBase);
      }
      uint64_t A = Serial.pop();
      uint64_t B = Atomic.pop(Retries);
      ASSERT_EQ(A, B) << "pop order diverged at op " << Op;
      Live.push_back(A);
    } else {
      size_t Pick = nextRand(Rng) % Live.size();
      uint64_t Addr = Live[Pick];
      Live[Pick] = Live.back();
      Live.pop_back();
      Serial.push(Addr);
      Atomic.push(Addr);
    }
    ASSERT_EQ(Serial.freeCount(), Atomic.freeCount());
  }
  EXPECT_EQ(Retries, 0u) << "no contention in a single-threaded run";
}

TEST(AtomicBitmapTest, ConcurrentRemotePushesAreExactlyOnce) {
  // One owner popping as fast as it can while remote threads push blocks
  // back: every popped address must be unique among live blocks, and the
  // books must balance exactly at the end.
  constexpr uint64_t BlockBytes = 64;
  constexpr uint64_t Blocks = 1024;
  constexpr uint64_t Base = uint64_t(1) << 30;
  constexpr unsigned Pushers = 3;
  constexpr int RoundTrips = 20000;

  AtomicBitmapFreeList List;
  List.configure(BlockBytes, Blocks, /*MaxExtents=*/1);
  List.addExtent(Base);

  // Owner pops addresses and hands them round-robin to pusher inboxes;
  // pushers free them back.  Spsc inboxes via atomic slots.
  struct Inbox {
    std::atomic<uint64_t> Slot{0};
  };
  std::vector<Inbox> Inboxes(Pushers);
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Pushed{0};

  std::vector<std::thread> Threads;
  for (unsigned P = 0; P < Pushers; ++P)
    Threads.emplace_back([&, P] {
      while (!Done.load(std::memory_order_acquire)) {
        uint64_t Addr = Inboxes[P].Slot.exchange(0, std::memory_order_acquire);
        if (Addr) {
          List.push(Addr);
          Pushed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
      uint64_t Addr = Inboxes[P].Slot.exchange(0, std::memory_order_acquire);
      if (Addr) {
        List.push(Addr);
        Pushed.fetch_add(1, std::memory_order_relaxed);
      }
    });

  uint64_t Retries = 0;
  uint64_t Popped = 0;
  std::set<uint64_t> OwnerLive;
  for (int I = 0; I < RoundTrips;) {
    if (List.empty()) {
      std::this_thread::yield();
      continue;
    }
    uint64_t Addr = List.pop(Retries);
    ASSERT_GE(Addr, Base);
    ASSERT_LT(Addr, Base + Blocks * BlockBytes);
    ASSERT_EQ((Addr - Base) % BlockBytes, 0u);
    ++Popped;
    // Hand to a pusher; if its slot is full, free locally instead.
    unsigned P = static_cast<unsigned>(Popped % Pushers);
    uint64_t Expected = 0;
    if (Inboxes[P].Slot.compare_exchange_strong(Expected, Addr,
                                                std::memory_order_release))
      ++I;
    else
      List.push(Addr);
  }
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();

  // Every block is back on the free list; none was lost or duplicated.
  EXPECT_EQ(List.freeCount(), Blocks);
  uint64_t Seen = 0;
  List.forEachFree([&](uint64_t) { ++Seen; });
  EXPECT_EQ(Seen, Blocks);
}

//===----------------------------------------------------------------------===//
// RemoteFreeChannel
//===----------------------------------------------------------------------===//

TEST(RemoteFreeChannelTest, MpscDeliversDisjointSetsExactlyOnce) {
  // Several producers push disjoint address ranges while one consumer
  // drains repeatedly; the union of all drains must be exactly the union
  // of what was pushed, each node exactly once.
  constexpr unsigned Producers = 4;
  constexpr uint64_t PerProducer = 5000;

  RemoteFreeChannel Channel;
  std::vector<std::vector<RemoteFreeNode>> Nodes(Producers);
  for (unsigned P = 0; P < Producers; ++P)
    Nodes[P].resize(PerProducer);

  std::atomic<unsigned> Started{0};
  std::vector<std::thread> Threads;
  for (unsigned P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      ++Started;
      while (Started.load() < Producers)
        std::this_thread::yield();
      for (uint64_t I = 0; I < PerProducer; ++I) {
        RemoteFreeNode *Node = &Nodes[P][I];
        Node->Addr = (uint64_t(P) << 32) | I;
        Node->Size = 64;
        Channel.push(Node);
      }
    });

  std::set<uint64_t> Seen;
  uint64_t Drained = 0;
  while (Drained < Producers * PerProducer) {
    RemoteFreeNode *Head = Channel.drain();
    for (RemoteFreeNode *Node = Head; Node; Node = Node->Next) {
      ASSERT_TRUE(Seen.insert(Node->Addr).second)
          << "node drained twice: " << Node->Addr;
      ++Drained;
    }
    std::this_thread::yield();
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Seen.size(), Producers * PerProducer);
  EXPECT_EQ(Channel.drain(), nullptr);
}

//===----------------------------------------------------------------------===//
// Serving engine: determinism and conformance
//===----------------------------------------------------------------------===//

TEST(ServeEngineTest, RegistryExportIsByteIdenticalAtAnyWorkerCount) {
  // The headline jobs-invariance promise: one TenantSet replayed in
  // channel mode at 1, 2, and 8 workers exports byte-identical registry
  // JSON — every heap gauge, fragmentation sample, and per-tenant counter.
  ThreadPool Pool(2);
  TenantSet Tenants(smallConfig(), Pool);

  auto ExportAt = [&](unsigned Workers) {
    Tenants.resetReplayState();
    StatsRegistry Registry;
    ServeRunOptions Run;
    Run.Family = ServeFamily::Cas;
    Run.Remote = RemoteFreeMode::Channel;
    Run.Workers = Workers;
    Run.Registry = &Registry;
    Run.Prefix = "serve.";
    Run.ExportTenants = true;
    runServe(Tenants, Run);
    std::string Json;
    Registry.writeJson(Json, "  ");
    return Json;
  };

  std::string At1 = ExportAt(1);
  std::string At2 = ExportAt(2);
  std::string At8 = ExportAt(8);
  EXPECT_FALSE(At1.empty());
  EXPECT_EQ(At1, At2);
  EXPECT_EQ(At1, At8);
}

TEST(ServeEngineTest, RunToRunReplayIsDeterministic) {
  // Same set, same options, two runs: identical results and identical
  // per-tenant stream stats.
  ThreadPool Pool(2);
  TenantSet Tenants(smallConfig(), Pool);

  ServeRunOptions Run;
  Run.Family = ServeFamily::Bsd;
  Run.Remote = RemoteFreeMode::Channel;
  ServeResult First = runServe(Tenants, Run);
  std::vector<TenantServeStats> FirstStats;
  for (unsigned T = 0; T < Tenants.tenantCount(); ++T)
    FirstStats.push_back(Tenants.tenantStats(T));

  Tenants.resetReplayState();
  ServeResult Second = runServe(Tenants, Run);
  EXPECT_EQ(First.Events, Second.Events);
  EXPECT_EQ(First.HeapBytes, Second.HeapBytes);
  EXPECT_EQ(First.RemoteFrees, Second.RemoteFrees);
  for (unsigned T = 0; T < Tenants.tenantCount(); ++T) {
    const TenantServeStats &S = Tenants.tenantStats(T);
    EXPECT_EQ(FirstStats[T].Allocs, S.Allocs);
    EXPECT_EQ(FirstStats[T].Frees, S.Frees);
    EXPECT_EQ(FirstStats[T].AllocBytes, S.AllocBytes);
    EXPECT_EQ(FirstStats[T].RemoteFrees, S.RemoteFrees);
    EXPECT_EQ(FirstStats[T].PeakLiveBytes, S.PeakLiveBytes);
  }
}

TEST(ServeEngineTest, TenantSumsMatchAggregateAndCrossShardTrafficExists) {
  ThreadPool Pool(2);
  TenantSet Tenants(smallConfig(), Pool);

  ServeRunOptions Run;
  Run.Family = ServeFamily::FirstFit;
  ServeResult Result = runServe(Tenants, Run);

  uint64_t Allocs = 0, Frees = 0, Remote = 0;
  for (unsigned T = 0; T < Tenants.tenantCount(); ++T) {
    const TenantServeStats &S = Tenants.tenantStats(T);
    Allocs += S.Allocs;
    Frees += S.Frees;
    Remote += S.RemoteFrees;
  }
  EXPECT_EQ(Result.AllocEvents, Allocs);
  EXPECT_EQ(Result.FreeEvents, Frees);
  EXPECT_EQ(Result.Events, Allocs + Frees);
  EXPECT_EQ(Result.Events, Tenants.totalEvents());
  EXPECT_EQ(Result.RemoteFrees, Remote);
  // Tenant migration guarantees cross-shard frees; a zero here means the
  // shard-routing scheme silently collapsed to affinity.
  EXPECT_GT(Result.RemoteFrees, 0u);
  EXPECT_GT(Result.Contention.RemoteFreePushes, 0u);
  // Every shard saw work.
  EXPECT_GT(Result.ShardEventsMin, 0u);
  EXPECT_GE(Result.ShardEventsMax, Result.ShardEventsMin);
}

TEST(ServeEngineTest, EagerTotalsMatchChannelTotals) {
  // Eager remote frees change placement, never the event stream: stream-
  // derived totals must agree with channel mode exactly.
  ThreadPool Pool(2);
  TenantSet Tenants(smallConfig(), Pool);

  ServeRunOptions Run;
  Run.Family = ServeFamily::Cas;
  Run.Remote = RemoteFreeMode::Channel;
  ServeResult Channel = runServe(Tenants, Run);

  Tenants.resetReplayState();
  Run.Remote = RemoteFreeMode::Eager;
  ServeResult Eager = runServe(Tenants, Run);

  EXPECT_EQ(Eager.Events, Channel.Events);
  EXPECT_EQ(Eager.AllocEvents, Channel.AllocEvents);
  EXPECT_EQ(Eager.FreeEvents, Channel.FreeEvents);
  EXPECT_EQ(Eager.RemoteFrees, Channel.RemoteFrees);
  EXPECT_EQ(Eager.Rounds, Channel.Rounds);
  EXPECT_EQ(Eager.ShardEventsMax, Channel.ShardEventsMax);
  EXPECT_EQ(Eager.ShardEventsMin, Channel.ShardEventsMin);
  // Eager mode routes nothing through the channels.
  EXPECT_EQ(Eager.Contention.RemoteFreePushes, 0u);
  EXPECT_EQ(Eager.Contention.MaxDrainDepth, 0u);
}

TEST(ServeEngineTest, CasShardConformsToShadowBsdPerShard) {
  // The conformance anchor: a W=1 channel-mode CAS run logs every shard's
  // operations in application order; replaying each log into a fresh
  // bitmap-mode BsdAllocator under ShadowBsd must reproduce the addresses
  // exactly.  The CAS shard *is* the bitmap-mode Kingsley allocator with
  // atomic free lists — same refill geometry, same lowest-address policy.
  ServeConfig Cfg = smallConfig();
  ThreadPool Pool(1);
  TenantSet Tenants(Cfg, Pool);

  std::vector<std::vector<ServeOpLogEntry>> OpLog;
  ServeRunOptions Run;
  Run.Family = ServeFamily::Cas;
  Run.Remote = RemoteFreeMode::Channel;
  Run.Workers = 1;
  Run.OpLog = &OpLog;
  runServe(Tenants, Run);

  ASSERT_EQ(OpLog.size(), Cfg.Shards);
  SharedBackingStore::Config Backing;
  uint64_t TotalOps = 0;
  for (unsigned S = 0; S < Cfg.Shards; ++S) {
    BsdAllocator::Config Reference;
    Reference.BaseAddress = Backing.BaseAddress + S * Backing.LaneBytes;
    Reference.FreeList = BsdAllocator::FreeListKind::Bitmap;
    BsdAllocator Bsd(Reference);
    ViolationLog Log;
    ShadowBsd Shadow(Bsd, Log);
    for (const ServeOpLogEntry &Op : OpLog[S]) {
      if (Op.IsAlloc) {
        uint64_t Addr = Bsd.allocate(Op.Size);
        ASSERT_EQ(Addr, Op.Addr) << "shard " << S << " placement diverged";
        Shadow.onAlloc(Op.Size, Addr);
      } else {
        Bsd.free(Op.Addr);
        Shadow.onFree(Op.Addr);
      }
      ++TotalOps;
    }
    Shadow.finish();
    EXPECT_TRUE(Log.clean()) << "shard " << S << ": " << Log.total()
                             << " shadow violations";
  }
  EXPECT_GT(TotalOps, 0u);
}

TEST(ServeEngineTest, UnknownProgramThrows) {
  ServeConfig Cfg = smallConfig();
  Cfg.Program = "NO_SUCH_WORKLOAD";
  ThreadPool Pool(1);
  EXPECT_THROW(TenantSet(Cfg, Pool), std::runtime_error);
}

TEST(ServeEngineTest, HeterogeneousMixRoundRobinsPrograms) {
  ServeConfig Cfg = smallConfig();
  Cfg.Program.clear(); // round-robin over allPrograms()
  Cfg.Tenants = 6;
  ThreadPool Pool(2);
  TenantSet Tenants(Cfg, Pool);
  // At least two distinct workload models in the mix.
  std::set<std::string> Programs;
  for (unsigned T = 0; T < Tenants.tenantCount(); ++T)
    Programs.insert(Tenants.tenantProgram(T));
  EXPECT_GE(Programs.size(), 2u);

  ServeRunOptions Run;
  Run.Family = ServeFamily::Arena;
  ServeResult Result = runServe(Tenants, Run);
  EXPECT_EQ(Result.Events, Tenants.totalEvents());
}

TEST(ServeEngineTest, PredictionPathCountsPredictedShort) {
  ServeConfig Cfg = smallConfig();
  Cfg.Tenants = 4;
  Cfg.NeedPrediction = true;
  ThreadPool Pool(2);
  TenantSet Tenants(Cfg, Pool);

  ServeRunOptions Run;
  Run.Family = ServeFamily::Arena;
  runServe(Tenants, Run);
  uint64_t PredictedShort = 0;
  for (unsigned T = 0; T < Tenants.tenantCount(); ++T)
    PredictedShort += Tenants.tenantStats(T).PredictedShort;
  // CFRAC is dominated by short-lived objects; a trained predictor that
  // never fires would be a wiring bug.
  EXPECT_GT(PredictedShort, 0u);
}
