//===- tests/alloc_bsd_test.cpp - BSD/Kingsley allocator tests -------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/BsdAllocator.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <set>
#include <vector>

using namespace lifepred;

TEST(BsdTest, BucketForRoundsToPowerOfTwoWithHeader) {
  BsdAllocator A;
  // 8 bytes + 8-byte header = 16 -> bucket 4.
  EXPECT_EQ(A.bucketFor(8), 4u);
  EXPECT_EQ(A.bucketFor(9), 5u);  // 17 -> 32.
  EXPECT_EQ(A.bucketFor(24), 5u); // 32 -> 32.
  EXPECT_EQ(A.bucketFor(25), 6u); // 33 -> 64.
  EXPECT_EQ(A.bucketFor(1), 4u);  // Min class.
}

TEST(BsdTest, FreedBlockReusedLifo) {
  BsdAllocator A;
  uint64_t P1 = A.allocate(20);
  A.free(P1);
  uint64_t P2 = A.allocate(20);
  EXPECT_EQ(P1, P2);
}

TEST(BsdTest, DifferentClassesNeverShareBlocks) {
  BsdAllocator A;
  uint64_t P1 = A.allocate(20);
  A.free(P1);
  uint64_t P2 = A.allocate(200); // Different class: fresh block.
  EXPECT_NE(P1, P2);
}

TEST(BsdTest, PageRefillProducesDistinctBlocks) {
  BsdAllocator A;
  std::set<uint64_t> Addrs;
  for (int I = 0; I < 1000; ++I)
    EXPECT_TRUE(Addrs.insert(A.allocate(24)).second);
  EXPECT_EQ(A.counters().PageRefills,
            1000u * 32 / 8192 + (1000u * 32 % 8192 ? 1 : 0));
}

TEST(BsdTest, OversizeClassGetsExactBlock) {
  BsdAllocator A;
  uint64_t Before = A.heapBytes();
  A.allocate(20000); // 20008 -> 32768 block.
  EXPECT_EQ(A.heapBytes() - Before, 32768u);
}

TEST(BsdTest, HeapNeverShrinksAndTracksPeak) {
  BsdAllocator A;
  std::vector<uint64_t> Ptrs;
  for (int I = 0; I < 100; ++I)
    Ptrs.push_back(A.allocate(100));
  uint64_t Peak = A.heapBytes();
  for (uint64_t P : Ptrs)
    A.free(P);
  EXPECT_EQ(A.heapBytes(), Peak); // No decommit in Kingsley malloc.
  EXPECT_EQ(A.maxHeapBytes(), Peak);
  EXPECT_EQ(A.liveBytes(), 0u);
}

TEST(BsdTest, InternalFragmentationExceedsFirstFitStyle) {
  // 33-byte objects burn 64-byte blocks: heap at least ~1.5x payload.
  BsdAllocator A;
  for (int I = 0; I < 1000; ++I)
    A.allocate(33);
  EXPECT_GE(A.heapBytes(), 1000u * 64);
}

TEST(BsdTest, RandomWorkloadNoOverlapWithinClass) {
  BsdAllocator A;
  Rng R(3);
  std::vector<uint64_t> Live;
  std::set<uint64_t> LiveSet;
  for (int I = 0; I < 20000; ++I) {
    if (Live.empty() || R.nextBool(0.55)) {
      uint64_t P = A.allocate(static_cast<uint32_t>(R.nextInRange(1, 300)));
      EXPECT_TRUE(LiveSet.insert(P).second) << "address handed out twice";
      Live.push_back(P);
    } else {
      size_t Pick = R.nextBelow(Live.size());
      LiveSet.erase(Live[Pick]);
      A.free(Live[Pick]);
      Live[Pick] = Live.back();
      Live.pop_back();
    }
  }
}

TEST(BsdTest, CountersTrackBucketBits) {
  BsdAllocator A;
  A.allocate(8);  // bucket 4
  A.allocate(56); // bucket 6
  EXPECT_EQ(A.counters().Allocs, 2u);
  EXPECT_EQ(A.counters().BucketBits, 10u);
}
