//===- tests/quantile_test.cpp - P-squared quantile tests ------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "quantile/ExactQuantiles.h"
#include "quantile/P2Markers.h"
#include "quantile/QuantileHistogram.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

using namespace lifepred;

TEST(P2MarkersTest, ExactWhileFewObservations) {
  P2Markers M({0.5});
  M.add(3.0);
  M.add(1.0);
  EXPECT_DOUBLE_EQ(M.min(), 1.0);
  EXPECT_DOUBLE_EQ(M.max(), 3.0);
  EXPECT_DOUBLE_EQ(M.quantile(0.5), 2.0);
}

TEST(P2MarkersTest, TracksExtremesExactly) {
  P2Markers M({0.25, 0.5, 0.75});
  Rng R(5);
  double Lo = 1e9, Hi = -1e9;
  for (int I = 0; I < 10000; ++I) {
    double V = R.nextDouble() * 1000;
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
    M.add(V);
  }
  EXPECT_DOUBLE_EQ(M.min(), Lo);
  EXPECT_DOUBLE_EQ(M.max(), Hi);
}

TEST(P2MarkersTest, MedianOfUniformIsCentered) {
  P2Markers M({0.5});
  Rng R(6);
  for (int I = 0; I < 100000; ++I)
    M.add(R.nextDouble());
  EXPECT_NEAR(M.quantile(0.5), 0.5, 0.01);
}

TEST(P2MarkersTest, MarkersMonotone) {
  P2Markers M({0.1, 0.25, 0.5, 0.75, 0.9});
  Rng R(8);
  for (int I = 0; I < 20000; ++I)
    M.add(std::exp(R.nextGaussian()));
  for (size_t I = 1; I < M.markerCount(); ++I)
    EXPECT_LE(M.markerValue(I - 1), M.markerValue(I));
}

TEST(P2MarkersTest, ConstantStream) {
  P2Markers M({0.5});
  for (int I = 0; I < 1000; ++I)
    M.add(7.0);
  EXPECT_DOUBLE_EQ(M.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(M.min(), 7.0);
  EXPECT_DOUBLE_EQ(M.max(), 7.0);
}

TEST(P2MarkersTest, QuantileClampsPhi) {
  P2Markers M({0.5});
  for (int I = 1; I <= 100; ++I)
    M.add(static_cast<double>(I));
  EXPECT_DOUBLE_EQ(M.quantile(-1.0), M.min());
  EXPECT_DOUBLE_EQ(M.quantile(2.0), M.max());
}

namespace {

/// Distribution shapes for the accuracy sweep.
enum class Shape { Uniform, Exponential, LogNormal, Bimodal, HeavyTail };

std::string shapeName(Shape S) {
  switch (S) {
  case Shape::Uniform:
    return "Uniform";
  case Shape::Exponential:
    return "Exponential";
  case Shape::LogNormal:
    return "LogNormal";
  case Shape::Bimodal:
    return "Bimodal";
  case Shape::HeavyTail:
    return "HeavyTail";
  }
  return "?";
}

double sampleShape(Shape S, Rng &R) {
  switch (S) {
  case Shape::Uniform:
    return R.nextDouble() * 100;
  case Shape::Exponential:
    return -std::log(1.0 - R.nextDouble()) * 50;
  case Shape::LogNormal:
    return std::exp(R.nextGaussian() * 0.8 + 2.0);
  case Shape::Bimodal:
    return R.nextBool(0.5) ? R.nextDouble() * 10
                           : 100 + R.nextDouble() * 10;
  case Shape::HeavyTail:
    return std::pow(1.0 - R.nextDouble(), -1.5);
  }
  return 0;
}

class P2AccuracyTest
    : public ::testing::TestWithParam<std::tuple<Shape, uint64_t>> {};

} // namespace

TEST_P(P2AccuracyTest, ApproximatesExactQuantiles) {
  auto [S, Seed] = GetParam();
  Rng R(Seed);
  P2Markers Markers({0.25, 0.5, 0.75});
  ExactQuantiles Exact;
  for (int I = 0; I < 50000; ++I) {
    double V = sampleShape(S, R);
    Markers.add(V);
    Exact.add(V);
  }
  // Property: the P-squared estimate of quantile phi corresponds to a true
  // quantile within a window around phi.  Well-behaved shapes stay within
  // +/-0.03; the bimodal gap makes any value between the modes a valid
  // median, so its window is wide.  The heavy tail is P-squared's known
  // failure mode (the paper observed the same drift on GHOST) and is
  // covered by the monotonicity and extrema tests instead.
  if (S == Shape::HeavyTail) {
    for (size_t I = 1; I < Markers.markerCount(); ++I)
      EXPECT_LE(Markers.markerValue(I - 1), Markers.markerValue(I));
    return;
  }
  double Window = S == Shape::Bimodal ? 0.3 : 0.03;
  for (double Phi : {0.25, 0.5, 0.75}) {
    double Lo = Exact.quantile(std::max(0.0, Phi - Window));
    double Hi = Exact.quantile(std::min(1.0, Phi + Window));
    double Approx = Markers.quantile(Phi);
    EXPECT_GE(Approx, Lo - 0.5)
        << shapeName(S) << " phi=" << Phi << " seed=" << Seed;
    EXPECT_LE(Approx, Hi + 0.5)
        << shapeName(S) << " phi=" << Phi << " seed=" << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, P2AccuracyTest,
    ::testing::Combine(::testing::Values(Shape::Uniform, Shape::Exponential,
                                         Shape::LogNormal, Shape::Bimodal,
                                         Shape::HeavyTail),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<Shape, uint64_t>> &Info) {
      return shapeName(std::get<0>(Info.param)) + "_seed" +
             std::to_string(std::get<1>(Info.param));
    });

TEST(ExactQuantilesTest, OrderStatistics) {
  ExactQuantiles E;
  for (double V : {5.0, 1.0, 3.0, 2.0, 4.0})
    E.add(V);
  EXPECT_DOUBLE_EQ(E.min(), 1.0);
  EXPECT_DOUBLE_EQ(E.max(), 5.0);
  EXPECT_DOUBLE_EQ(E.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(E.quantile(0.25), 2.0);
}

TEST(ExactQuantilesTest, InterpolatesBetweenValues) {
  ExactQuantiles E;
  E.add(0.0);
  E.add(10.0);
  EXPECT_DOUBLE_EQ(E.quantile(0.5), 5.0);
}

TEST(ExactQuantilesTest, AddAfterQueryResorts) {
  ExactQuantiles E;
  E.add(1.0);
  E.add(3.0);
  EXPECT_DOUBLE_EQ(E.max(), 3.0);
  E.add(10.0);
  EXPECT_DOUBLE_EQ(E.max(), 10.0);
}

TEST(QuantileHistogramTest, ExactExtremaAndSelectionRule) {
  QuantileHistogram H(8);
  Rng R(3);
  for (int I = 0; I < 5000; ++I)
    H.add(static_cast<double>(R.nextBelow(30000)) + 1);
  EXPECT_TRUE(H.allBelow(32 * 1024));
  EXPECT_FALSE(H.allBelow(100));
  H.add(40000.0);
  EXPECT_FALSE(H.allBelow(32 * 1024)); // One long object disqualifies.
  EXPECT_DOUBLE_EQ(H.max(), 40000.0);
}

TEST(QuantileHistogramTest, EmptyHistogramNeverQualifies) {
  QuantileHistogram H(8);
  EXPECT_FALSE(H.allBelow(32 * 1024));
  EXPECT_EQ(H.count(), 0u);
}

TEST(QuantileHistogramTest, QuantileEndpointsAreExact) {
  QuantileHistogram H(4);
  for (int I = 1; I <= 1000; ++I)
    H.add(static_cast<double>(I));
  EXPECT_DOUBLE_EQ(H.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(H.quantile(1.0), 1000.0);
  EXPECT_NEAR(H.quantile(0.5), 500.0, 25.0);
}

TEST(QuantileHistogramTest, CellCountIsConfigurable) {
  QuantileHistogram H(16);
  EXPECT_EQ(H.cells(), 16u);
  for (int I = 0; I < 100; ++I)
    H.add(I);
  EXPECT_EQ(H.count(), 100u);
}

//===----------------------------------------------------------------------===//
// P2Markers versus the exact reference (observatory satellite tests)
//===----------------------------------------------------------------------===//

TEST(P2MarkersTest, MatchesExactOnSortedStream) {
  // An ascending stream is the estimator's stress case: every observation
  // lands above every marker.  The estimate must still track the exact
  // quantile within a few percent of the value range.
  P2Markers M({0.5, 0.9, 0.99});
  ExactQuantiles Exact;
  for (int I = 1; I <= 2000; ++I) {
    M.add(static_cast<double>(I));
    Exact.add(static_cast<double>(I));
  }
  const double Range = Exact.max() - Exact.min();
  for (double Phi : {0.5, 0.9, 0.99})
    EXPECT_NEAR(M.quantile(Phi), Exact.quantile(Phi), 0.05 * Range)
        << "phi=" << Phi;
}

TEST(P2MarkersTest, MatchesExactOnDescendingStream) {
  P2Markers M({0.5, 0.9});
  ExactQuantiles Exact;
  for (int I = 2000; I >= 1; --I) {
    M.add(static_cast<double>(I));
    Exact.add(static_cast<double>(I));
  }
  const double Range = Exact.max() - Exact.min();
  for (double Phi : {0.5, 0.9})
    EXPECT_NEAR(M.quantile(Phi), Exact.quantile(Phi), 0.05 * Range)
        << "phi=" << Phi;
}

TEST(P2MarkersTest, ConstantStreamIsExactEverywhere) {
  // Every marker must collapse onto the single observed value, so any
  // quantile query returns it exactly — no interpolation drift.
  P2Markers M({0.25, 0.5, 0.75});
  ExactQuantiles Exact;
  for (int I = 0; I < 500; ++I) {
    M.add(42.0);
    Exact.add(42.0);
  }
  for (double Phi : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(M.quantile(Phi), 42.0) << "phi=" << Phi;
    EXPECT_DOUBLE_EQ(Exact.quantile(Phi), 42.0) << "phi=" << Phi;
  }
}
