//===- tests/flightrecorder_test.cpp - Lifetime flight recorder tests ------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Covers the per-object audit trail end to end: a hand-computed arena
// pinning scenario (every episode field checked against arithmetic done on
// paper), the golden human-readable audit report, audit JSON validity,
// headline telemetry export, chrome://tracing occupancy spans, reset-closed
// episodes with survivor death backfill, reservoir sampling determinism,
// recorder-vs-SimTelemetry confusion equivalence on both predicting
// simulators, jobs-invariance of the full audit output, and the
// PredictingHeap attach/finish lifecycle.
//
//===----------------------------------------------------------------------===//

#include "alloc/ArenaAllocator.h"
#include "core/Pipeline.h"
#include "runtime/Instrument.h"
#include "runtime/PredictingHeap.h"
#include "runtime/RuntimeProfiler.h"
#include "sim/MultiArenaSimulator.h"
#include "sim/SimTelemetry.h"
#include "sim/TraceSimulator.h"
#include "support/Json.h"
#include "support/Random.h"
#include "support/ThreadPool.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/LifetimeAudit.h"
#include "telemetry/StatsRegistry.h"
#include "telemetry/TraceEventWriter.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace lifepred;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

/// A clock that returns 10, 20, 30, ... so trace output is deterministic.
TraceEventWriter::ClockFn tickingClock() {
  auto Next = std::make_shared<std::atomic<uint64_t>>(0);
  return [Next]() -> uint64_t { return Next->fetch_add(10) + 10; };
}

/// Drives a two-arena allocator through a sequence whose dead-byte
/// integral is computable on paper.  Geometry: 8192-byte area, 2 arenas of
/// 4096 bytes.  Timeline (byte clocks):
///
///   100    A (id 0, site 1, 100 B, thr 1000)  -> arena 0 gen 0
///   4100   B (id 1, site 2, 4000 B, thr 5000) -> scan: arena 0 pinned
///          (survivors [A]), arena 1 reset to gen 1; B lands in arena 1
///   8100   free B (lifetime 4000, true short)
///   12100  C (id 2, site 2, 4000 B, thr 5000) -> scan: arena 0 pinned
///          again (integral += (4096-100) * 8000 = 31,968,000), arena 1
///          reset to gen 2; C lands in arena 1
///   16100  free C (lifetime 4000, true short)
///   16200  free A (lifetime 16100, false short; integral +=
///          (4096-100) * 4100 = 16,383,600; survivor death backfilled)
///   20000  finish (integral += 4096 * 3800 = 15,564,800)
///
/// Expected: exactly one episode — band 0 arena 0 gen 0, pinned since
/// 4100, end 20000, not reset, 2 pin events, dead-byte integral
/// 31,968,000 + 16,383,600 + 15,564,800 = 63,916,400, survivor A with
/// death 16200.  Arena 1 resets while unpinned and archives nothing.
void runGoldenScenario(FlightRecorder &Rec) {
  ArenaAllocator::Config Cfg;
  Cfg.AreaBytes = 8192;
  Cfg.ArenaCount = 2;
  ArenaAllocator Alloc(Cfg);
  Rec.setArenaGeometry(AuditPlacement::DefaultBand, Alloc.arenaBytes());
  Alloc.attachLifecycle(&Rec);

  auto Place = [&](uint64_t Addr) {
    AuditPlacement P;
    if (Alloc.isArenaAddress(Addr)) {
      P.ArenaIndex = Alloc.arenaIndexFor(Addr);
      P.Generation = Alloc.arenaGeneration(P.ArenaIndex);
    }
    return P;
  };

  Rec.beginEvent(100);
  uint64_t A = Alloc.allocate(100, true);
  Rec.recordAlloc(0, 100, 1, 100, true, 1000, Place(A));

  Rec.beginEvent(4100);
  uint64_t B = Alloc.allocate(4000, true);
  Rec.recordAlloc(1, 4100, 2, 4000, true, 5000, Place(B));
  Rec.recordFree(1, 8100);
  Alloc.free(B);

  Rec.beginEvent(12100);
  uint64_t C = Alloc.allocate(4000, true);
  Rec.recordAlloc(2, 12100, 2, 4000, true, 5000, Place(C));
  Rec.recordFree(2, 16100);
  Alloc.free(C);

  Rec.recordFree(0, 16200);
  Alloc.free(A);

  Rec.finish(20000);
}

} // namespace

//===----------------------------------------------------------------------===//
// Hand-computed pinning attribution
//===----------------------------------------------------------------------===//

TEST(FlightRecorderTest, HandComputedPinningAttribution) {
  FlightRecorder Rec;
  runGoldenScenario(Rec);

  EXPECT_TRUE(Rec.finished());
  EXPECT_EQ(Rec.totalObjects(), 3u);
  EXPECT_EQ(Rec.totalBytes(), 8100u);
  EXPECT_EQ(Rec.sampledCount(), 3u); // Capacity 4096: everything sampled.
  EXPECT_EQ(Rec.finalClock(), 20000u);

  // Exactly one episode: arena 0 generation 0.  Arena 1 was reset twice
  // but never observed pinned, so it archives nothing.
  EXPECT_EQ(Rec.pinnedEpisodeCount(), 1u);
  EXPECT_EQ(Rec.droppedEpisodes(), 0u);
  ASSERT_EQ(Rec.episodes().size(), 1u);
  const FlightRecorder::PinEpisode &E = Rec.episodes()[0];
  EXPECT_EQ(E.Band, AuditPlacement::DefaultBand);
  EXPECT_EQ(E.ArenaIndex, 0u);
  EXPECT_EQ(E.Generation, 0u);
  EXPECT_EQ(E.FirstFillClock, 100u);
  EXPECT_EQ(E.LastFillClock, 100u);
  EXPECT_EQ(E.PinnedSinceClock, 4100u);
  EXPECT_EQ(E.EndClock, 20000u);
  EXPECT_FALSE(E.ResetObserved);
  EXPECT_EQ(E.PinEvents, 2u);
  EXPECT_EQ(E.ObjectCount, 1u);
  EXPECT_EQ(E.PlacedBytes, 100u);
  EXPECT_EQ(E.SurvivorCount, 1u);
  // (4096-100)*8000 + (4096-100)*4100 + 4096*3800 = 63,916,400.
  EXPECT_EQ(E.DeadByteIntegral, 63916400u);
  EXPECT_EQ(Rec.totalDeadByteIntegral(), 63916400u);

  ASSERT_EQ(E.Survivors.size(), 1u);
  EXPECT_EQ(E.Survivors[0].Id, 0u);
  EXPECT_EQ(E.Survivors[0].Site, 1u);
  EXPECT_EQ(E.Survivors[0].Size, 100u);
  EXPECT_EQ(E.Survivors[0].BirthClock, 100u);
  EXPECT_EQ(E.Survivors[0].DeathClock, 16200u); // Backfilled at free time.

  // Forensics: A outlived its 1000-byte threshold (false short); B and C
  // died within their 5000-byte threshold (true short).
  auto Forensics = Rec.siteForensics();
  ASSERT_EQ(Forensics.size(), 2u);
  const FlightRecorder::SiteForensics &Site1 = Forensics.at(1);
  EXPECT_EQ(Site1.Objects, 1u);
  EXPECT_EQ(Site1.FalseShort, 1u);
  EXPECT_EQ(Site1.FalseShortBytes, 100u);
  EXPECT_EQ(Site1.TrueShort, 0u);
  const FlightRecorder::SiteForensics &Site2 = Forensics.at(2);
  EXPECT_EQ(Site2.Objects, 2u);
  EXPECT_EQ(Site2.TrueShort, 2u);
  EXPECT_EQ(Site2.wastedBytes(), 0u);

  // The sample is sorted by birth clock and carries placement + outcome.
  std::vector<FlightRecorder::ObjectRecord> Samples = Rec.sampledRecords();
  ASSERT_EQ(Samples.size(), 3u);
  EXPECT_EQ(Samples[0].Id, 0u);
  EXPECT_EQ(Samples[0].DeathClock, 16200u);
  EXPECT_TRUE(Samples[0].PredictedShort);
  EXPECT_FALSE(Samples[0].ActuallyShort);
  EXPECT_EQ(Samples[0].ArenaIndex, 0u);
  EXPECT_EQ(Samples[1].Id, 1u);
  EXPECT_TRUE(Samples[1].ActuallyShort);
  EXPECT_EQ(Samples[1].ArenaIndex, 1u);
  EXPECT_EQ(Samples[1].Generation, 1u);
  EXPECT_EQ(Samples[2].Generation, 2u);
}

TEST(FlightRecorderTest, GoldenAuditReport) {
  FlightRecorder Rec;
  runGoldenScenario(Rec);
  AuditReport Report = buildAuditReport(Rec, nullptr, "golden");

  std::string Path = tempPath("golden_audit.txt");
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  ASSERT_NE(Out, nullptr);
  printAuditReport(Report, Out);
  std::fclose(Out);

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::ostringstream Buffer;
  Buffer << In.rdbuf();

  // Site 2 mispredicts nothing, so only site 1 prints; its observed p50 is
  // the log2 bucket lower bound of lifetime 16100, i.e. 8192.
  EXPECT_EQ(
      Buffer.str(),
      "== lifetime audit: golden ==\n"
      "objects 3 (8100 bytes), sampled 3, final byte clock 20000\n"
      "confusion: true_short 2  false_short 1  missed_short 0  true_long 0\n"
      "wasted bytes: 100 false-short + 0 missed-short = 100\n"
      "\n"
      "mispredicting sites (by wasted bytes):\n"
      "    site   objects false_short missed_short wasted_bytes    obs_p50"
      "   train_p50   drift\n"
      "       1         1           1            0          100       8192"
      "           -       -\n"
      "\n"
      "arena pinning (by dead-bytes-held):\n"
      "  band 0 arena 0 gen 0: pinned 4100..20000 (still pinned), 1/1 "
      "survivors listed, dead-bytes-held 63916400\n"
      "    survivor id=0 site=1 size=100 born=100 died=16200\n"
      "totals: 1 pinned episodes (0 pruned), dead-byte integral 63916400\n");
}

TEST(FlightRecorderTest, AuditJsonIsValidAndComplete) {
  FlightRecorder Rec;
  runGoldenScenario(Rec);
  AuditReport Report = buildAuditReport(Rec, nullptr, "json");

  std::string Out;
  writeAuditJson(Report, Out, "");
  std::optional<JsonValue> Doc = parseJson(Out);
  ASSERT_TRUE(Doc.has_value()) << Out;

  EXPECT_EQ(Doc->find("label")->string(), "json");
  EXPECT_DOUBLE_EQ(Doc->numberOr("objects", -1), 3.0);
  EXPECT_DOUBLE_EQ(Doc->numberOr("bytes", -1), 8100.0);
  EXPECT_DOUBLE_EQ(Doc->numberOr("final_clock", -1), 20000.0);

  const JsonValue *Totals = Doc->find("totals");
  ASSERT_TRUE(Totals && Totals->isObject());
  EXPECT_DOUBLE_EQ(Totals->numberOr("true_short", -1), 2.0);
  EXPECT_DOUBLE_EQ(Totals->numberOr("false_short", -1), 1.0);
  EXPECT_DOUBLE_EQ(Totals->numberOr("wasted_bytes", -1), 100.0);
  EXPECT_DOUBLE_EQ(Totals->numberOr("dead_byte_integral", -1), 63916400.0);
  EXPECT_DOUBLE_EQ(Totals->numberOr("pinned_episodes", -1), 1.0);

  const JsonValue *Sites = Doc->find("sites");
  ASSERT_TRUE(Sites && Sites->isArray());
  ASSERT_EQ(Sites->array().size(), 2u); // JSON keeps clean sites too.
  EXPECT_DOUBLE_EQ(Sites->array()[0].numberOr("site", -1), 1.0);
  EXPECT_DOUBLE_EQ(Sites->array()[0].numberOr("obs_p50", -1), 8192.0);

  const JsonValue *Episodes = Doc->find("episodes");
  ASSERT_TRUE(Episodes && Episodes->isArray());
  ASSERT_EQ(Episodes->array().size(), 1u);
  const JsonValue &E = Episodes->array()[0];
  EXPECT_DOUBLE_EQ(E.numberOr("arena", -1), 0.0);
  EXPECT_DOUBLE_EQ(E.numberOr("pinned_since", -1), 4100.0);
  EXPECT_DOUBLE_EQ(E.numberOr("end", -1), 20000.0);
  EXPECT_DOUBLE_EQ(E.numberOr("reset", -1), 0.0);
  EXPECT_DOUBLE_EQ(E.numberOr("dead_byte_integral", -1), 63916400.0);
  const JsonValue *Survivors = E.find("survivors");
  ASSERT_TRUE(Survivors && Survivors->isArray());
  ASSERT_EQ(Survivors->array().size(), 1u);
  EXPECT_DOUBLE_EQ(Survivors->array()[0].numberOr("death", -1), 16200.0);

  const JsonValue *Samples = Doc->find("samples");
  ASSERT_TRUE(Samples && Samples->isArray());
  ASSERT_EQ(Samples->array().size(), 3u);
  EXPECT_DOUBLE_EQ(Samples->array()[0].numberOr("predicted_short", -1), 1.0);
  EXPECT_DOUBLE_EQ(Samples->array()[0].numberOr("actually_short", -1), 0.0);
}

TEST(FlightRecorderTest, ExportAuditTelemetryHeadlines) {
  FlightRecorder Rec;
  runGoldenScenario(Rec);
  AuditReport Report = buildAuditReport(Rec);

  StatsRegistry Reg;
  exportAuditTelemetry(Report, Reg, "audit.");
  EXPECT_EQ(Reg.counters().at("audit.objects"), 3u);
  EXPECT_EQ(Reg.counters().at("audit.sites"), 2u);
  EXPECT_EQ(Reg.counters().at("audit.true_short"), 2u);
  EXPECT_EQ(Reg.counters().at("audit.false_short"), 1u);
  EXPECT_EQ(Reg.counters().at("audit.wasted_bytes"), 100u);
  EXPECT_EQ(Reg.counters().at("audit.dead_byte_integral"), 63916400u);
  EXPECT_EQ(Reg.counters().at("audit.pinned_episodes"), 1u);
  // Top-offender gauges: site 1 with 100 wasted bytes; site 2 is clean and
  // must not produce a top2 entry.
  EXPECT_EQ(Reg.gauges().at("audit.top1.site"), 1u);
  EXPECT_EQ(Reg.gauges().at("audit.top1.wasted_bytes"), 100u);
  EXPECT_EQ(Reg.gauges().count("audit.top2.site"), 0u);
  EXPECT_EQ(Reg.gauges().at("audit.max_episode_dead_bytes"), 63916400u);
}

TEST(FlightRecorderTest, ArenaOccupancyTraceEvents) {
  FlightRecorder Rec;
  runGoldenScenario(Rec);
  AuditReport Report = buildAuditReport(Rec);

  TraceEventWriter Writer(tempPath("occupancy_trace.json"), tickingClock());
  emitArenaOccupancy(Report, Writer);
  std::optional<JsonValue> Doc = parseJson(Writer.toJson());
  ASSERT_TRUE(Doc.has_value());
  const JsonValue *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  // One fill span + one pinned span; no reset instant (still pinned).
  ASSERT_EQ(Events->array().size(), 2u);
  for (const JsonValue &E : Events->array()) {
    EXPECT_EQ(E.find("ph")->string(), "X");
    EXPECT_DOUBLE_EQ(E.numberOr("tid", -1), 100.0); // Track 100+0*64+0.
    EXPECT_EQ(E.find("cat")->string(), "arena");
    ASSERT_NE(E.find("dur"), nullptr);
  }
  EXPECT_DOUBLE_EQ(Events->array()[0].numberOr("ts", -1), 100.0);
  EXPECT_DOUBLE_EQ(Events->array()[0].numberOr("dur", -1), 0.0);
  EXPECT_DOUBLE_EQ(Events->array()[1].numberOr("ts", -1), 4100.0);
  EXPECT_DOUBLE_EQ(Events->array()[1].numberOr("dur", -1), 15900.0);
}

TEST(FlightRecorderTest, ResetClosesEpisodeAndBackfillsSurvivorDeath) {
  // A pinned arena whose survivor dies and whose reset is then observed:
  // the episode must close at the reset clock with ResetObserved set.
  ArenaAllocator::Config Cfg;
  Cfg.AreaBytes = 8192;
  Cfg.ArenaCount = 2;
  ArenaAllocator Alloc(Cfg);
  FlightRecorder Rec;
  Rec.setArenaGeometry(AuditPlacement::DefaultBand, Alloc.arenaBytes());
  Alloc.attachLifecycle(&Rec);
  auto Place = [&](uint64_t Addr) {
    AuditPlacement P;
    if (Alloc.isArenaAddress(Addr)) {
      P.ArenaIndex = Alloc.arenaIndexFor(Addr);
      P.Generation = Alloc.arenaGeneration(P.ArenaIndex);
    }
    return P;
  };

  Rec.beginEvent(100);
  uint64_t D = Alloc.allocate(3000, true); // Arena 0.
  Rec.recordAlloc(0, 100, 7, 3000, true, 100, Place(D));
  Rec.beginEvent(6100);
  uint64_t E = Alloc.allocate(3000, true); // Scan: arena 0 pinned at 6100.
  Rec.recordAlloc(1, 6100, 7, 3000, true, 100, Place(E));
  Rec.recordFree(0, 8100); // Integral += (4096-3000)*2000 = 2,192,000.
  Alloc.free(D);
  Rec.beginEvent(10100);
  uint64_t F = Alloc.allocate(3000, true); // Scan resets arena 0 at 10100.
  Rec.recordAlloc(2, 10100, 7, 3000, true, 100, Place(F));
  EXPECT_EQ(Place(F).ArenaIndex, 0u);
  EXPECT_EQ(Place(F).Generation, 1u);
  Rec.finish(12000);

  ASSERT_EQ(Rec.episodes().size(), 1u);
  const FlightRecorder::PinEpisode &Episode = Rec.episodes()[0];
  EXPECT_EQ(Episode.ArenaIndex, 0u);
  EXPECT_EQ(Episode.Generation, 0u);
  EXPECT_TRUE(Episode.ResetObserved);
  EXPECT_EQ(Episode.PinnedSinceClock, 6100u);
  EXPECT_EQ(Episode.EndClock, 10100u);
  // 2,192,000 while D lived + 4096*2000 = 8,192,000 empty = 10,384,000.
  EXPECT_EQ(Episode.DeadByteIntegral, 10384000u);
  ASSERT_EQ(Episode.Survivors.size(), 1u);
  EXPECT_EQ(Episode.Survivors[0].Id, 0u);
  EXPECT_EQ(Episode.Survivors[0].DeathClock, 8100u);
}

TEST(FlightRecorderTest, ReservoirIsBoundedAndDeterministic) {
  auto Run = [](FlightRecorder &Rec) {
    for (uint64_t Id = 0; Id < 200; ++Id) {
      uint64_t Birth = 16 * Id + 16;
      Rec.beginEvent(Birth);
      Rec.recordAlloc(Id, Birth, uint32_t(Id % 5), 16, (Id % 3) == 0, 64,
                      AuditPlacement());
      if (Id % 2 == 0)
        Rec.recordFree(Id, Birth + 40);
    }
    Rec.finish(16 * 200 + 16);
  };

  FlightRecorder::Config Cfg;
  Cfg.ReservoirCapacity = 4;
  FlightRecorder A(Cfg), B(Cfg);
  Run(A);
  Run(B);

  EXPECT_EQ(A.totalObjects(), 200u);
  EXPECT_EQ(A.sampledCount(), 4u); // Bounded despite 200 offers.
  std::vector<FlightRecorder::ObjectRecord> SA = A.sampledRecords();
  std::vector<FlightRecorder::ObjectRecord> SB = B.sampledRecords();
  ASSERT_EQ(SA.size(), SB.size());
  for (size_t I = 0; I < SA.size(); ++I) {
    EXPECT_EQ(SA[I].Id, SB[I].Id);
    EXPECT_EQ(SA[I].BirthClock, SB[I].BirthClock);
    EXPECT_EQ(SA[I].DeathClock, SB[I].DeathClock);
    EXPECT_EQ(SA[I].Site, SB[I].Site);
    EXPECT_EQ(SA[I].PredictedShort, SB[I].PredictedShort);
    EXPECT_EQ(SA[I].ActuallyShort, SB[I].ActuallyShort);
  }

  // A different seed retains a different sample (the draw depends on it).
  FlightRecorder::Config Other = Cfg;
  Other.Seed = 0x2026;
  FlightRecorder C(Other);
  Run(C);
  std::vector<FlightRecorder::ObjectRecord> SC = C.sampledRecords();
  bool AnyDifference = SC.size() != SA.size();
  for (size_t I = 0; !AnyDifference && I < SC.size(); ++I)
    AnyDifference = SC[I].Id != SA[I].Id;
  EXPECT_TRUE(AnyDifference);
}

//===----------------------------------------------------------------------===//
// Simulator integration
//===----------------------------------------------------------------------===//

namespace {

/// A trace of mostly short-lived objects from one site plus rare
/// long-lived ones from another (telemetry_test's shape).
AllocationTrace churnTrace(uint64_t Seed, size_t Objects) {
  AllocationTrace T;
  Rng R(Seed);
  uint32_t ShortChain = T.internChain(CallChain{1, 2});
  uint32_t LongChain = T.internChain(CallChain{1, 3});
  for (size_t I = 0; I < Objects; ++I) {
    if (R.nextBool(0.95))
      T.append({static_cast<uint64_t>(R.nextInRange(8, 2000)), 32,
                ShortChain, 1});
    else
      T.append({static_cast<uint64_t>(R.nextInRange(100000, 400000)), 64,
                LongChain, 1});
  }
  return T;
}

} // namespace

TEST(FlightRecorderSimTest, ArenaRecorderMatchesSimTelemetry) {
  AllocationTrace T = churnTrace(31, 20000);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  SiteDatabase DB = trainDatabase(profileTrace(T, Policy), Policy);

  FlightRecorder Rec;
  SimTelemetry Tel;
  Tel.Recorder = &Rec;
  ArenaSimResult R = simulateArena(T, DB, 5.0, {}, {}, &Tel);

  // The recorder sees every allocation event and classifies it against
  // the same threshold the simulator uses, so the confusion matrices are
  // identical.
  EXPECT_TRUE(Rec.finished());
  EXPECT_EQ(Rec.totalObjects(), uint64_t(T.size()));
  AuditReport Report = buildAuditReport(Rec);
  EXPECT_EQ(Report.TrueShort, Tel.Outcomes.TrueShort);
  EXPECT_EQ(Report.FalseShort, Tel.Outcomes.FalseShort);
  EXPECT_EQ(Report.MissedShort, Tel.Outcomes.MissedShort);
  EXPECT_EQ(Report.TrueLong, Tel.Outcomes.TrueLong);
  EXPECT_EQ(Report.FinalClock, T.totalBytes());

  // Recording must not perturb the simulation.
  ArenaSimResult Plain = simulateArena(T, DB, 5.0);
  EXPECT_EQ(Plain.MaxHeapBytes, R.MaxHeapBytes);
  EXPECT_TRUE(Plain.Arena == R.Arena);
}

TEST(FlightRecorderSimTest, MultiArenaRecorderMatchesSimTelemetry) {
  AllocationTrace T = churnTrace(32, 20000);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  ClassDatabase DB =
      trainClassDatabase(profileTrace(T, Policy), Policy, {4096, 32 * 1024});

  FlightRecorder Rec;
  SimTelemetry Tel;
  Tel.Recorder = &Rec;
  MultiArenaSimResult R = simulateMultiArena(T, DB, {}, &Tel);

  EXPECT_TRUE(Rec.finished());
  EXPECT_EQ(Rec.totalObjects(), uint64_t(T.size()));
  AuditReport Report = buildAuditReport(Rec);
  EXPECT_EQ(Report.TrueShort, Tel.Outcomes.TrueShort);
  EXPECT_EQ(Report.FalseShort, Tel.Outcomes.FalseShort);
  EXPECT_EQ(Report.MissedShort, Tel.Outcomes.MissedShort);
  EXPECT_EQ(Report.TrueLong, Tel.Outcomes.TrueLong);

  MultiArenaSimResult Plain = simulateMultiArena(T, DB);
  EXPECT_EQ(Plain.MaxHeapBytes, R.MaxHeapBytes);
  EXPECT_EQ(Plain.GeneralAllocs, R.GeneralAllocs);
}

namespace {

/// Replays TaskCount audited simulations on a pool of Jobs threads — one
/// recorder per task, exactly the bench fan-out discipline — and returns
/// the audit JSON concatenated in task order.
std::string auditAtJobCount(unsigned Jobs, size_t TaskCount) {
  ThreadPool Pool(Jobs);
  std::vector<std::string> PerTask(TaskCount);
  parallelForIndex(Pool, TaskCount, [&](size_t Index) {
    SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
    AllocationTrace Train = churnTrace(500 + Index, 15000);
    AllocationTrace Test = churnTrace(900 + Index, 15000);
    Profile TrainProfile = profileTrace(Train, Policy);
    SiteDatabase DB = trainDatabase(TrainProfile, Policy);

    FlightRecorder Rec;
    SimTelemetry Tel;
    Tel.Recorder = &Rec;
    simulateArena(Test, DB, 5.0, {}, {}, &Tel);

    TrainedQuantileMap Trained =
        buildTrainedQuantiles(Test, TrainProfile, Policy);
    AuditReport Report = buildAuditReport(
        Rec, &Trained, "task" + std::to_string(Index));
    writeAuditJson(Report, PerTask[Index], "");
  });
  std::string All;
  for (const std::string &Task : PerTask) {
    All += Task;
    All += '\n';
  }
  return All;
}

} // namespace

TEST(FlightRecorderSimTest, AuditJsonIdenticalAtAnyJobCount) {
  // The acceptance bar for the audit trail: byte-identical output at any
  // --jobs value.  Each replay owns its recorder; exports happen in task
  // order; sampling is a hash of the trace content, not of scheduling.
  const size_t TaskCount = 6;
  std::string Serial = auditAtJobCount(1, TaskCount);
  EXPECT_EQ(Serial, auditAtJobCount(2, TaskCount));
  EXPECT_EQ(Serial, auditAtJobCount(8, TaskCount));
  // Sanity: the output is substantial, not trivially empty.
  EXPECT_GT(Serial.size(), 1000u);
}

//===----------------------------------------------------------------------===//
// PredictingHeap integration
//===----------------------------------------------------------------------===//

namespace {

/// An instrumented "application" driving a profiler or a predicting heap
/// behind shadow-stack frames (runtime_test's shape).
struct AuditApp {
  RuntimeProfiler *Profiler = nullptr;
  PredictingHeap *Heap = nullptr;
  std::vector<void *> Retained;
  uintptr_t NextFake = 0x1000;

  void *alloc(uint32_t Size) {
    if (Heap)
      return Heap->allocate(Size);
    auto *P = reinterpret_cast<void *>(NextFake += 64);
    Profiler->recordAlloc(P, Size);
    return P;
  }
  void release(void *P) {
    if (Heap)
      Heap->deallocate(P);
    else
      Profiler->recordFree(P);
  }
  void temporary() {
    LIFEPRED_NAMED_FUNCTION("temporary");
    void *P = alloc(24);
    release(P);
  }
  void node() {
    LIFEPRED_NAMED_FUNCTION("node");
    Retained.push_back(alloc(24));
  }
  void run(int Iterations) {
    LIFEPRED_NAMED_FUNCTION("run");
    for (int I = 0; I < Iterations; ++I) {
      temporary();
      if (I % 50 == 0)
        node();
    }
  }
};

} // namespace

TEST(PredictingHeapRecorderTest, AuditTrailCoversEveryAllocation) {
  ShadowStack::current().clear();
  RuntimeProfiler Profiler(SiteKeyPolicy::lastN(4));
  AuditApp Train;
  Train.Profiler = &Profiler;
  Train.run(1000);
  SiteDatabase DB = Profiler.train();

  ShadowStack::current().clear();
  PredictingHeap Heap(DB);
  FlightRecorder Rec;
  Heap.attachRecorder(&Rec);
  AuditApp App;
  App.Heap = &Heap;
  App.run(1000);
  for (void *P : App.Retained)
    Heap.deallocate(P);
  Heap.finishRecording();

  EXPECT_TRUE(Rec.finished());
  uint64_t Allocs = Heap.stats().ArenaAllocs + Heap.stats().GeneralAllocs;
  EXPECT_EQ(Rec.totalObjects(), Allocs);
  // The heap drives a bytes-allocated clock.
  EXPECT_EQ(Rec.finalClock(),
            Heap.stats().ArenaBytes + Heap.stats().GeneralBytes);
  // Everything was freed before finish, so every record carries a death.
  AuditReport Report = buildAuditReport(Rec, nullptr, "heap");
  EXPECT_EQ(Report.TrueShort + Report.FalseShort + Report.MissedShort +
                Report.TrueLong,
            Allocs);
  for (const FlightRecorder::ObjectRecord &R : Report.Samples)
    EXPECT_NE(R.DeathClock, FlightRecorder::NoDeath);
}
