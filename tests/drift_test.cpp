//===- tests/drift_test.cpp - Prediction drift observatory tests -----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Covers the windowed time-series substrate (window-edge placement, empty
// trailing windows, ring mode, merge determinism) and the drift
// observatory built on it: a hand-computed golden drift JSON over a small
// trace with an engineered mid-trace lifetime shift, byte-identity of the
// drift report across sharded fills at thread pools of 1, 2, and 8,
// equivalence of the in-memory (simulateArena), streamed-sequential,
// batched, and sharded drive shapes, the CUSUM change-point localizer,
// per-site observed-vs-trained divergence scoring, the ESPRESSO
// acceptance run, and the DriftSampleLog / PredictingHeap /
// RuntimeProfiler::quantileProbes live-run path.
//
//===----------------------------------------------------------------------===//

#include "callchain/FunctionRegistry.h"
#include "core/Pipeline.h"
#include "runtime/Instrument.h"
#include "runtime/PredictingHeap.h"
#include "runtime/RuntimeProfiler.h"
#include "sim/CompiledPrediction.h"
#include "sim/SimTelemetry.h"
#include "sim/TraceSimulator.h"
#include "support/Random.h"
#include "support/ThreadPool.h"
#include "telemetry/DriftObservatory.h"
#include "telemetry/StatsRegistry.h"
#include "telemetry/TimeSeries.h"
#include "trace/CompiledTrace.h"
#include "workloads/Programs.h"
#include "workloads/WorkloadRunner.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <string>
#include <vector>

using namespace lifepred;

//===----------------------------------------------------------------------===//
// TimeSeries: window geometry
//===----------------------------------------------------------------------===//

TEST(TimeSeriesTest, EventExactlyOnEdgeOpensItsWindow) {
  // Clock W * Width belongs to window W, not W - 1: the window an edge
  // clock *opens*.
  EXPECT_EQ(TimeSeries::windowIndexFor(0, 100), 0u);
  EXPECT_EQ(TimeSeries::windowIndexFor(99, 100), 0u);
  EXPECT_EQ(TimeSeries::windowIndexFor(100, 100), 1u);
  EXPECT_EQ(TimeSeries::windowIndexFor(200, 100), 2u);

  TimeSeries::Config C;
  C.WindowBytes = 100;
  C.CounterLanes = 1;
  TimeSeries Ts(C);
  Ts.add(100, 0, 7);
  EXPECT_EQ(Ts.counter(0, 0), 0u);
  EXPECT_EQ(Ts.counter(1, 0), 7u);
}

TEST(TimeSeriesTest, EmptyTrailingWindowsAreMaterialized) {
  TimeSeries::Config C;
  C.WindowBytes = 100;
  C.CounterLanes = 1;
  TimeSeries Ts(C);
  Ts.add(50, 0, 1);
  EXPECT_EQ(Ts.windowCount(), 1u);
  // A quiet tail still shows up as explicit zero windows through the end
  // clock — including the edge clock 1000, which opens window 10.
  Ts.extendToClock(1000);
  EXPECT_EQ(Ts.windowCount(), 11u);
  for (uint64_t W = 1; W <= 10; ++W)
    EXPECT_EQ(Ts.counter(W, 0), 0u) << "window " << W;
  // Out-of-range reads are 0, not UB.
  EXPECT_EQ(Ts.counter(99, 0), 0u);
  EXPECT_EQ(Ts.histogram(99, 0), nullptr);
}

TEST(TimeSeriesTest, RingModeKeepsTrailingWindowsOnly) {
  TimeSeries::Config C;
  C.WindowBytes = 10;
  C.CounterLanes = 1;
  C.RingWindows = 3;
  TimeSeries Ts(C);
  for (uint64_t W = 0; W < 8; ++W)
    Ts.addWindow(W, 0, W + 1);
  EXPECT_EQ(Ts.firstWindow(), 5u);
  EXPECT_EQ(Ts.windowCount(), 3u);
  EXPECT_EQ(Ts.droppedWindows(), 5u);
  EXPECT_EQ(Ts.counter(5, 0), 6u);
  EXPECT_EQ(Ts.counter(7, 0), 8u);
  // Dropped windows read as zero; a late write below the base is counted
  // and otherwise ignored.
  EXPECT_EQ(Ts.counter(0, 0), 0u);
  Ts.addWindow(1, 0, 99);
  EXPECT_EQ(Ts.lateDrops(), 1u);
  EXPECT_EQ(Ts.counter(1, 0), 0u);
}

TEST(TimeSeriesTest, MergeEqualsSequentialFillInAnyOrder) {
  TimeSeries::Config C;
  C.WindowBytes = 10;
  C.CounterLanes = 2;
  C.HistogramLanes = 1;
  auto fill = [&C](TimeSeries &Ts, uint64_t First, uint64_t Last) {
    for (uint64_t Clock = First; Clock < Last; ++Clock) {
      Ts.add(Clock, 0, 1);
      Ts.add(Clock, 1, Clock);
      Ts.observe(Clock, 0, Clock + 1);
    }
  };
  TimeSeries Sequential(C);
  fill(Sequential, 0, 100);

  TimeSeries A(C), B(C), D(C);
  fill(A, 0, 33);
  fill(B, 33, 66);
  fill(D, 66, 100);

  // Forward merge order.
  TimeSeries Forward(C);
  Forward.merge(A);
  Forward.merge(B);
  Forward.merge(D);
  EXPECT_TRUE(Forward == Sequential);

  // Reverse merge order — adds commute.
  TimeSeries Reverse(C);
  Reverse.merge(D);
  Reverse.merge(B);
  Reverse.merge(A);
  EXPECT_TRUE(Reverse == Sequential);
}

//===----------------------------------------------------------------------===//
// DriftObservatory: hand-computed golden
//===----------------------------------------------------------------------===//

namespace {

/// The six-event micro scenario: window width 100, end clock 1000,
/// threshold 50.  Site 7 is predicted short and flips from short-lived to
/// a 400-byte overstay mid-trace (the engineered lifetime shift).
DriftObservatory goldenObservatory() {
  DriftConfig C;
  C.EndClock = 1000;
  C.WindowBytes = 100;
  C.Threshold = 50;
  DriftObservatory Obs(C);
  // (clock, site, size, predicted, lifetime, actually short)
  Obs.recordAlloc(0, 7, 16, true, 10, true);     // w0: true short
  Obs.recordAlloc(100, 7, 16, true, 10, true);   // edge clock -> w1
  Obs.recordAlloc(250, 9, 32, false, 20, true);  // w2: missed short
  Obs.recordAlloc(300, 7, 16, true, 400, false); // w3: false short, pins
  Obs.recordAlloc(500, 11, 8, false, 600, false); // w5: true long
  Obs.recordAlloc(999, 7, 16, true, 0, true);    // w9: zero-lifetime TS
  return Obs;
}

} // namespace

TEST(DriftObservatoryTest, HandComputedWindowRows) {
  DriftObservatory Obs = goldenObservatory();
  EXPECT_EQ(Obs.windowCount(), 11u); // Windows 0..10, trailing w10 empty.
  EXPECT_EQ(Obs.totalObjects(), 6u);
  EXPECT_EQ(Obs.sites().size(), 3u);

  DriftReport R = buildDriftReport(Obs, nullptr, "golden");
  ASSERT_EQ(R.Windows.size(), 11u);
  EXPECT_EQ(R.TrueShort, 3u);
  EXPECT_EQ(R.FalseShort, 1u);
  EXPECT_EQ(R.MissedShort, 1u);
  EXPECT_EQ(R.TrueLong, 1u);
  EXPECT_EQ(R.FalseShortBytes, 16u);
  EXPECT_EQ(R.MissedShortBytes, 32u);
  // The false short born at 300 with observed lifetime 400 pins its arena
  // over [300 + 50, 300 + 400) = clocks 350..699 -> windows 3, 4, 5, 6.
  EXPECT_EQ(R.PinnedBytes, 4u * 16u);
  for (uint64_t W : {3u, 4u, 5u, 6u})
    EXPECT_EQ(R.Windows[W].PinnedBytes, 16u) << "window " << W;
  EXPECT_EQ(R.Windows[7].PinnedBytes, 0u);
  // 4 correct of 6 -> 666666 ppm (integer division).
  EXPECT_EQ(R.MeanAccuracyPpm, 666666);
  // Empty windows carry the no-data sentinel, not zero accuracy.
  EXPECT_EQ(R.Windows[4].AccuracyPpm, -1);
  EXPECT_EQ(R.Windows[10].AccuracyPpm, -1);
  EXPECT_EQ(R.Windows[0].AccuracyPpm, 1000000);
  EXPECT_EQ(R.Windows[2].AccuracyPpm, 0);
}

TEST(DriftObservatoryTest, GoldenDriftJson) {
  // The full report serialization, hand-computed byte for byte.  With six
  // events and a mean of 666666 ppm every populated window deviates more
  // than the CUSUM decision threshold, so each one trips and resets.
  DriftReport R = buildDriftReport(goldenObservatory(), nullptr, "golden");
  std::string Json;
  writeDriftJson(R, Json, "");
  const std::string Expected =
      "{\n"
      "  \"label\": \"golden\",\n"
      "  \"window_bytes\": 100,\n"
      "  \"end_clock\": 1000,\n"
      "  \"threshold\": 50,\n"
      "  \"windows\": 11,\n"
      "  \"objects\": 6,\n"
      "  \"sites\": 3,\n"
      "  \"true_short\": 3,\n"
      "  \"false_short\": 1,\n"
      "  \"missed_short\": 1,\n"
      "  \"true_long\": 1,\n"
      "  \"false_short_bytes\": 16,\n"
      "  \"missed_short_bytes\": 32,\n"
      "  \"pinned_bytes\": 64,\n"
      "  \"accuracy_mean_ppm\": 666666,\n"
      "  \"changepoint_count\": 6,\n"
      "  \"changepoints\": [0, 1, 2, 3, 5, 9],\n"
      "  \"scored_site_windows\": 0,\n"
      "  \"worst_site\": null,\n"
      "  \"top_sites\": [],\n"
      "  \"series\": [\n"
      "    {\"w\": 0, \"start\": 0, \"ts\": 1, \"fs\": 0, \"ms\": 0, "
      "\"tl\": 0, \"acc_ppm\": 1000000, \"false_short_bytes\": 0, "
      "\"missed_short_bytes\": 0, \"pinned_bytes\": 0, \"changepoint\": "
      "true},\n"
      "    {\"w\": 1, \"start\": 100, \"ts\": 1, \"fs\": 0, \"ms\": 0, "
      "\"tl\": 0, \"acc_ppm\": 1000000, \"false_short_bytes\": 0, "
      "\"missed_short_bytes\": 0, \"pinned_bytes\": 0, \"changepoint\": "
      "true},\n"
      "    {\"w\": 2, \"start\": 200, \"ts\": 0, \"fs\": 0, \"ms\": 1, "
      "\"tl\": 0, \"acc_ppm\": 0, \"false_short_bytes\": 0, "
      "\"missed_short_bytes\": 32, \"pinned_bytes\": 0, \"changepoint\": "
      "true},\n"
      "    {\"w\": 3, \"start\": 300, \"ts\": 0, \"fs\": 1, \"ms\": 0, "
      "\"tl\": 0, \"acc_ppm\": 0, \"false_short_bytes\": 16, "
      "\"missed_short_bytes\": 0, \"pinned_bytes\": 16, \"changepoint\": "
      "true},\n"
      "    {\"w\": 4, \"start\": 400, \"ts\": 0, \"fs\": 0, \"ms\": 0, "
      "\"tl\": 0, \"acc_ppm\": -1, \"false_short_bytes\": 0, "
      "\"missed_short_bytes\": 0, \"pinned_bytes\": 16, \"changepoint\": "
      "false},\n"
      "    {\"w\": 5, \"start\": 500, \"ts\": 0, \"fs\": 0, \"ms\": 0, "
      "\"tl\": 1, \"acc_ppm\": 1000000, \"false_short_bytes\": 0, "
      "\"missed_short_bytes\": 0, \"pinned_bytes\": 16, \"changepoint\": "
      "true},\n"
      "    {\"w\": 6, \"start\": 600, \"ts\": 0, \"fs\": 0, \"ms\": 0, "
      "\"tl\": 0, \"acc_ppm\": -1, \"false_short_bytes\": 0, "
      "\"missed_short_bytes\": 0, \"pinned_bytes\": 16, \"changepoint\": "
      "false},\n"
      "    {\"w\": 7, \"start\": 700, \"ts\": 0, \"fs\": 0, \"ms\": 0, "
      "\"tl\": 0, \"acc_ppm\": -1, \"false_short_bytes\": 0, "
      "\"missed_short_bytes\": 0, \"pinned_bytes\": 0, \"changepoint\": "
      "false},\n"
      "    {\"w\": 8, \"start\": 800, \"ts\": 0, \"fs\": 0, \"ms\": 0, "
      "\"tl\": 0, \"acc_ppm\": -1, \"false_short_bytes\": 0, "
      "\"missed_short_bytes\": 0, \"pinned_bytes\": 0, \"changepoint\": "
      "false},\n"
      "    {\"w\": 9, \"start\": 900, \"ts\": 1, \"fs\": 0, \"ms\": 0, "
      "\"tl\": 0, \"acc_ppm\": 1000000, \"false_short_bytes\": 0, "
      "\"missed_short_bytes\": 0, \"pinned_bytes\": 0, \"changepoint\": "
      "true},\n"
      "    {\"w\": 10, \"start\": 1000, \"ts\": 0, \"fs\": 0, \"ms\": 0, "
      "\"tl\": 0, \"acc_ppm\": -1, \"false_short_bytes\": 0, "
      "\"missed_short_bytes\": 0, \"pinned_bytes\": 0, \"changepoint\": "
      "false}\n"
      "  ]\n"
      "}";
  EXPECT_EQ(Json, Expected);
}

TEST(DriftObservatoryTest, CusumLocalizesEngineeredShift) {
  // 100 windows of 10 predicted-short objects each; the database goes
  // stale at window 98 (every allocation suddenly outlives the
  // threshold).  The majority phase sits within CUSUM slack of the run
  // mean (980000 ppm), so only the shifted tail trips.
  DriftConfig C;
  C.EndClock = 9999;
  C.WindowBytes = 100;
  C.Threshold = 50;
  DriftObservatory Obs(C);
  for (uint64_t W = 0; W < 100; ++W)
    for (uint64_t J = 0; J < 10; ++J) {
      bool Stale = W >= 98;
      Obs.recordAlloc(W * 100 + J, 7, 16, true, Stale ? 100000 : 10,
                      !Stale);
    }
  DriftReport R = buildDriftReport(Obs, nullptr, "shift");
  EXPECT_EQ(R.MeanAccuracyPpm, 980000);
  ASSERT_EQ(R.changePointCount(), 2u);
  EXPECT_EQ(R.ChangePointWindows[0], 98u);
  EXPECT_EQ(R.ChangePointWindows[1], 99u);
  for (uint64_t W = 0; W < 98; ++W)
    EXPECT_FALSE(R.Windows[W].ChangePoint) << "window " << W;
}

TEST(DriftObservatoryTest, SiteDivergenceScoredAgainstTrainedQuantiles) {
  DriftConfig C;
  C.EndClock = 1000;
  C.WindowBytes = 100;
  C.Threshold = 50;
  DriftObservatory Obs(C);
  // Site 5: four same-window objects observed living ~1000 bytes; site 6
  // has only three objects, below the scoring floor.
  for (int I = 0; I < 4; ++I)
    Obs.recordAlloc(10 + I, 5, 16, true, 800, false);
  for (int I = 0; I < 3; ++I)
    Obs.recordAlloc(40 + I, 6, 16, true, 800, false);

  TrainedQuantileMap Trained;
  TrainedSiteQuantiles Q;
  Q.Objects = 100;
  Q.Q25 = 8;
  Q.Q50 = 10;
  Q.Q75 = 12;
  Trained.emplace(5, Q);
  Trained.emplace(6, Q);

  DriftReport R = buildDriftReport(Obs, &Trained, "sites");
  EXPECT_EQ(R.ScoredSiteWindows, 1u);
  ASSERT_TRUE(R.hasWorstSite());
  EXPECT_EQ(R.worstSite().Site, 5u);
  EXPECT_EQ(R.worstSite().Window, 0u);
  EXPECT_EQ(R.worstSite().Objects, 4u);
  EXPECT_DOUBLE_EQ(R.worstSite().TrainQ50, 10.0);
  // Observed ~800 vs trained ~10: better than five doublings of drift.
  EXPECT_GT(R.worstSite().Score, 5.0);
}

TEST(DriftObservatoryTest, TelemetryExportKeys) {
  StatsRegistry Registry;
  DriftReport R = buildDriftReport(goldenObservatory(), nullptr, "golden");
  exportDriftTelemetry(R, Registry, "drift.");
  EXPECT_EQ(Registry.counter("drift.windows"), 11u);
  EXPECT_EQ(Registry.counter("drift.objects"), 6u);
  EXPECT_EQ(Registry.counter("drift.changepoints"), 6u);
  EXPECT_EQ(Registry.counter("drift.pinned_bytes"), 64u);
  EXPECT_EQ(Registry.gauge("drift.accuracy_mean_ppm"), 666666u);
}

//===----------------------------------------------------------------------===//
// Shape and jobs invariance
//===----------------------------------------------------------------------===//

namespace {

/// A two-phase synthetic workload: short-lived churn whose lifetimes
/// lengthen past the midpoint, from two sites.
AllocationTrace shiftTrace(uint64_t Seed, size_t Objects) {
  AllocationTrace T;
  Rng R(Seed);
  uint32_t ChurnChain = T.internChain(CallChain{1, 2});
  uint32_t NodeChain = T.internChain(CallChain{1, 3});
  for (size_t I = 0; I < Objects; ++I) {
    bool Late = I >= Objects / 2;
    if (R.nextBool(0.9))
      T.append({static_cast<uint64_t>(
                    R.nextInRange(8, Late ? 90000 : 1500)),
                32, ChurnChain, 1});
    else
      T.append({static_cast<uint64_t>(R.nextInRange(200000, 500000)), 64,
                NodeChain, 1});
  }
  return T;
}

/// Streamed-sequential drive shape: walks the schedule arrays directly.
void fillSequential(const CompiledTrace &Compiled,
                    const AllocationTrace &Trace,
                    const PredictedShortBits &Predicted, uint64_t Threshold,
                    DriftObservatory &Obs, size_t First, size_t Last) {
  const EventSchedule &Schedule = Compiled.schedule();
  const uint32_t *Ids = Schedule.taggedIds();
  const uint64_t *Clocks = Schedule.clocks();
  for (size_t Event = First; Event < Last; ++Event) {
    uint32_t Tagged = Ids[Event];
    if (Tagged & EventSchedule::FreeBit)
      continue;
    const AllocRecord &Record = Trace.records()[Tagged];
    Obs.recordAlloc(Clocks[Event], Record.ChainIndex, Record.Size,
                    Predicted.test(Tagged), Record.Lifetime,
                    Record.Lifetime <= Threshold);
  }
}

/// Batched drive shape, routed by predicted bit so within-batch order is
/// genuinely permuted (mirrors trace_tool's --drift-shape=batch).
struct DriftBatchConsumer : ScheduleConsumer<DriftBatchConsumer> {
  const AllocationTrace *Trace = nullptr;
  const PredictedShortBits *Predicted = nullptr;
  uint64_t Threshold = 0;
  DriftObservatory *Obs = nullptr;

  uint32_t routeCount() const { return 2; }
  uint32_t routeOf(uint32_t Tagged) const {
    if (Tagged & EventSchedule::FreeBit)
      return 0;
    return Predicted->test(Tagged) ? 1u : 0u;
  }
  void onAlloc(uint32_t Id, uint64_t Clock) {
    const AllocRecord &Record = Trace->records()[Id];
    Obs->recordAlloc(Clock, Record.ChainIndex, Record.Size,
                     Predicted->test(Id), Record.Lifetime,
                     Record.Lifetime <= Threshold);
  }
  void onFree(uint32_t, uint64_t) {}
};

/// The sharded drive shape at \p Jobs workers: fixed event ranges filled
/// into per-shard observatories on a pool, merged in shard-index order.
std::string shardedDriftJson(unsigned Jobs, const CompiledTrace &Compiled,
                             const AllocationTrace &Trace,
                             const PredictedShortBits &Predicted,
                             const DriftConfig &Config, uint64_t Threshold) {
  const size_t ShardEvents = 4096;
  size_t Count = Compiled.schedule().size();
  size_t Shards = (Count + ShardEvents - 1) / ShardEvents;
  std::vector<std::unique_ptr<DriftObservatory>> PerShard(Shards);
  ThreadPool Pool(Jobs);
  parallelForIndex(Pool, Shards, [&](size_t Shard) {
    auto Local = std::make_unique<DriftObservatory>(Config);
    size_t First = Shard * ShardEvents;
    size_t Last = std::min(Count, First + ShardEvents);
    fillSequential(Compiled, Trace, Predicted, Threshold, *Local, First,
                   Last);
    PerShard[Shard] = std::move(Local);
  });
  DriftObservatory Merged(Config);
  for (const auto &Local : PerShard)
    Merged.merge(*Local);
  std::string Json;
  writeDriftJson(buildDriftReport(Merged, nullptr, "shard"), Json, "");
  return Json;
}

} // namespace

TEST(DriftShapeTest, AllFourDriveShapesProduceIdenticalObservatories) {
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  AllocationTrace Train = shiftTrace(101, 30000);
  AllocationTrace Test = shiftTrace(202, 30000);
  SiteDatabase DB = trainDatabase(profileTrace(Train, Policy), Policy);
  CompiledTrace Compiled(Test, Policy);
  PredictedShortBits Predicted(Compiled, DB);

  DriftConfig Config;
  Config.EndClock = Compiled.schedule().endClock();
  Config.WindowBytes = 0; // Auto width, like the tools.
  Config.Threshold = DB.threshold();

  // In-memory shape: the instrumented arena simulator feeds the
  // observatory from inside the replay.
  DriftObservatory Memory(Config);
  SimTelemetry Telemetry;
  Telemetry.Drift = &Memory;
  simulateArena(Compiled, DB, 5.0, {}, {}, &Telemetry);

  // Streamed-sequential shape.
  DriftObservatory Stream(Config);
  fillSequential(Compiled, Test, Predicted, DB.threshold(), Stream, 0,
                 Compiled.schedule().size());

  // Batched shape (within-batch order permuted by route).
  DriftObservatory Batch(Config);
  DriftBatchConsumer Consumer;
  Consumer.Trace = &Test;
  Consumer.Predicted = &Predicted;
  Consumer.Threshold = DB.threshold();
  Consumer.Obs = &Batch;
  forEachEventBatched(Compiled.schedule(), Consumer, 4096);

  EXPECT_TRUE(Memory == Stream);
  EXPECT_TRUE(Memory == Batch);

  // Sharded shape, and the --jobs invariance bar: byte-identical report
  // JSON from thread pools of 1, 2, and 8.
  std::string Sequential;
  writeDriftJson(buildDriftReport(Stream, nullptr, "shard"), Sequential,
                 "");
  std::string Jobs1 =
      shardedDriftJson(1, Compiled, Test, Predicted, Config, DB.threshold());
  std::string Jobs2 =
      shardedDriftJson(2, Compiled, Test, Predicted, Config, DB.threshold());
  std::string Jobs8 =
      shardedDriftJson(8, Compiled, Test, Predicted, Config, DB.threshold());
  EXPECT_EQ(Sequential, Jobs1);
  EXPECT_EQ(Jobs1, Jobs2);
  EXPECT_EQ(Jobs1, Jobs8);
  EXPECT_GT(Jobs1.size(), 500u);
}

TEST(DriftShapeTest, EspressoLocalizesChangePointWithNamedSite) {
  // The acceptance run: ESPRESSO's drift report must localize at least
  // one change-point window and name a worst-drift site.
  ProgramModel Espresso;
  bool Found = false;
  for (const ProgramModel &Model : allPrograms())
    if (std::string(Model.Name) == "ESPRESSO") {
      Espresso = Model;
      Found = true;
    }
  ASSERT_TRUE(Found);
  RunOptions Run;
  Run.Scale = 0.05;
  Run.Seed = 0x1993;
  Run.Kind = RunKind::Train;
  FunctionRegistry Registry;
  AllocationTrace Train = runWorkload(Espresso, Run, Registry);
  Run.Kind = RunKind::Test;
  AllocationTrace Test = runWorkload(Espresso, Run, Registry);

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  Profile TrainProfile = profileTrace(Train, Policy);
  SiteDatabase DB = trainDatabase(TrainProfile, Policy);
  CompiledTrace Compiled(Test, Policy);

  DriftConfig Config;
  Config.EndClock = Compiled.schedule().endClock();
  Config.Threshold = DB.threshold();
  DriftObservatory Obs(Config);
  SimTelemetry Telemetry;
  Telemetry.Drift = &Obs;
  simulateArena(Compiled, DB, Espresso.CallsPerAlloc, {}, {}, &Telemetry);

  TrainedQuantileMap Trained =
      buildTrainedQuantiles(Test, TrainProfile, Policy);
  DriftReport R = buildDriftReport(Obs, &Trained, "ESPRESSO.arena");
  EXPECT_GE(R.changePointCount(), 1u);
  ASSERT_TRUE(R.hasWorstSite());
  EXPECT_GT(R.worstSite().Objects, 0u);
  EXPECT_GT(R.worstSite().Score, 0.0);
}

//===----------------------------------------------------------------------===//
// Live-run path: DriftSampleLog, PredictingHeap, RuntimeProfiler probes
//===----------------------------------------------------------------------===//

TEST(DriftSampleLogTest, BuildMatchesDirectFill) {
  DriftSampleLog Log;
  Log.recordAlloc(1, 0, 7, 16, true);
  Log.recordFree(1, 10); // Lifetime 10.
  Log.recordAlloc(2, 300, 7, 16, true);
  Log.recordFree(2, 700); // Lifetime 400.
  Log.recordAlloc(3, 500, 9, 8, false); // Never freed.
  Log.finish(1000);
  EXPECT_EQ(Log.endClock(), 1000u);

  DriftObservatory Built = Log.build(100, 50);
  DriftConfig C;
  C.EndClock = 1000;
  C.WindowBytes = 100;
  C.Threshold = 50;
  DriftObservatory Direct(C);
  Direct.recordAlloc(0, 7, 16, true, 10, true);
  Direct.recordAlloc(300, 7, 16, true, 400, false);
  // Never freed clamps to exit: observed 500, actually long.
  Direct.recordAlloc(500, 9, 8, false, ~uint64_t(0), false);
  EXPECT_TRUE(Built == Direct);
}

namespace {

/// An instrumented "application" driving a profiler or a predicting heap
/// behind shadow-stack frames (runtime_test's shape), with a mid-run
/// behaviour shift: temporaries start leaking into a retained list.
struct DriftApp {
  RuntimeProfiler *Profiler = nullptr;
  PredictingHeap *Heap = nullptr;
  std::vector<void *> Retained;
  uintptr_t NextFake = 0x1000;

  void *alloc(uint32_t Size) {
    if (Heap)
      return Heap->allocate(Size);
    auto *P = reinterpret_cast<void *>(NextFake += 64);
    Profiler->recordAlloc(P, Size);
    return P;
  }
  void release(void *P) {
    if (Heap)
      Heap->deallocate(P);
    else
      Profiler->recordFree(P);
  }

  void makeTemporary(bool Leak) {
    LIFEPRED_NAMED_FUNCTION("makeTemporary");
    void *P = alloc(24);
    if (Leak)
      Retained.push_back(P);
    else
      release(P);
  }

  void run(int Iterations, bool ShiftAtHalf) {
    LIFEPRED_NAMED_FUNCTION("run");
    for (int I = 0; I < Iterations; ++I)
      makeTemporary(ShiftAtHalf && I >= Iterations / 2);
  }
};

} // namespace

TEST(DriftRuntimeTest, PredictingHeapFeedsSampleLogAndProbesScoreIt) {
  ShadowStack::current().clear();

  // Train on well-behaved churn: temporaries die instantly, so their site
  // trains short-lived with tiny quantiles.
  RuntimeProfiler Profiler(SiteKeyPolicy::lastN(4));
  DriftApp TrainApp;
  TrainApp.Profiler = &Profiler;
  TrainApp.run(4000, /*ShiftAtHalf=*/false);
  TrainedQuantileMap Probes = Profiler.quantileProbes();
  EXPECT_FALSE(Probes.empty());
  SiteDatabase DB = Profiler.train();
  ASSERT_GE(DB.size(), 1u);

  // Optimized run with a drift log attached; halfway through, the same
  // site's objects start living to program exit.
  PredictingHeap Heap(DB);
  DriftSampleLog Log;
  Heap.attachDriftLog(&Log);
  DriftApp TestApp;
  TestApp.Heap = &Heap;
  TestApp.run(4000, /*ShiftAtHalf=*/true);
  Heap.finishRecording();
  EXPECT_EQ(Log.size(), 4000u);
  EXPECT_GT(Log.endClock(), 0u);

  // Score the live run against the profiler's live-database probes: the
  // leaked second half shows up as false shorts with pinned bytes, and
  // the worst-drift site is named.
  DriftObservatory Obs = Log.build(0, DB.threshold());
  DriftReport R = buildDriftReport(Obs, &Probes, "live");
  EXPECT_EQ(R.TotalObjects, 4000u);
  EXPECT_GT(R.TrueShort, 0u);
  EXPECT_GT(R.FalseShort, 0u);
  EXPECT_GT(R.PinnedBytes, 0u);
  ASSERT_TRUE(R.hasWorstSite());
  EXPECT_GT(R.worstSite().Score, 0.0);
  // The leak starts at the midpoint, so the CUSUM flags change points in
  // the shifted back half.  (The front half legitimately flags too: with
  // a balanced two-phase run, both phases deviate from the global mean.)
  ASSERT_GE(R.changePointCount(), 1u);
  uint64_t Half = R.Windows.size() / 2;
  EXPECT_TRUE(std::any_of(R.ChangePointWindows.begin(),
                          R.ChangePointWindows.end(),
                          [Half](uint64_t W) { return W >= Half; }));

  // Detach and confirm the heap keeps working.
  Heap.attachDriftLog(nullptr);
  void *P = Heap.allocate(24);
  ASSERT_NE(P, nullptr);
  Heap.deallocate(P);
  for (void *Leaked : TestApp.Retained)
    Heap.deallocate(Leaked);
}
