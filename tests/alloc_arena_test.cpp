//===- tests/alloc_arena_test.cpp - Arena allocator tests ------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Exercises the paper's section 5.1 algorithm point by point: bump
// allocation, live counts, reset-only-when-empty, oversize and fallback
// paths, and address-range free classification.
//
//===----------------------------------------------------------------------===//

#include "alloc/ArenaAllocator.h"
#include "alloc/MultiArenaAllocator.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <vector>

using namespace lifepred;

TEST(ArenaTest, DefaultGeometryMatchesPaper) {
  ArenaAllocator A;
  EXPECT_EQ(A.config().AreaBytes, 64u * 1024);
  EXPECT_EQ(A.config().ArenaCount, 16u);
  EXPECT_EQ(A.arenaBytes(), 4096u);
}

TEST(ArenaTest, PredictedShortGoesToArena) {
  ArenaAllocator A;
  uint64_t P = A.allocate(100, /*PredictedShortLived=*/true);
  EXPECT_GE(P, A.config().ArenaBase);
  EXPECT_LT(P, A.config().ArenaBase + A.config().AreaBytes);
  EXPECT_EQ(A.counters().ArenaAllocs, 1u);
  EXPECT_EQ(A.arenaLiveCount(0), 1u);
}

TEST(ArenaTest, PredictedLongGoesToGeneralHeap) {
  ArenaAllocator A;
  uint64_t P = A.allocate(100, /*PredictedShortLived=*/false);
  EXPECT_GE(P, A.config().General.BaseAddress);
  EXPECT_EQ(A.counters().UnpredictedAllocs, 1u);
  EXPECT_EQ(A.counters().ArenaAllocs, 0u);
}

TEST(ArenaTest, BumpAllocationIsContiguous) {
  ArenaAllocator A;
  uint64_t P1 = A.allocate(16, true);
  uint64_t P2 = A.allocate(16, true);
  uint64_t P3 = A.allocate(24, true);
  EXPECT_EQ(P2, P1 + 16);
  EXPECT_EQ(P3, P2 + 16);
  // 24 is already 8-byte aligned: the next bump sits 24 bytes later.
  EXPECT_EQ(A.allocate(8, true), P3 + 24);
}

TEST(ArenaTest, FreeDecrementsLiveCount) {
  ArenaAllocator A;
  uint64_t P1 = A.allocate(100, true);
  uint64_t P2 = A.allocate(100, true);
  EXPECT_EQ(A.arenaLiveCount(0), 2u);
  A.free(P1);
  EXPECT_EQ(A.arenaLiveCount(0), 1u);
  A.free(P2);
  EXPECT_EQ(A.arenaLiveCount(0), 0u);
  EXPECT_EQ(A.counters().ArenaFrees, 2u);
}

TEST(ArenaTest, OversizeObjectFallsThroughToGeneral) {
  ArenaAllocator A;
  // 6144 > 4096: the GHOST case.
  uint64_t P = A.allocate(6144, true);
  EXPECT_GE(P, A.config().General.BaseAddress);
  EXPECT_EQ(A.counters().OversizeAllocs, 1u);
  EXPECT_EQ(A.counters().ArenaAllocs, 0u);
}

TEST(ArenaTest, ExactArenaSizeObjectFits) {
  ArenaAllocator A;
  uint64_t P = A.allocate(4096, true);
  EXPECT_LT(P, A.config().ArenaBase + A.config().AreaBytes);
  EXPECT_EQ(A.counters().ArenaAllocs, 1u);
}

TEST(ArenaTest, FullArenaSwitchesToEmptyOne) {
  ArenaAllocator A;
  // Fill arena 0 with live objects.
  std::vector<uint64_t> Ptrs;
  for (int I = 0; I < 4096 / 64; ++I)
    Ptrs.push_back(A.allocate(64, true));
  EXPECT_EQ(A.arenaLiveCount(0), 64u);
  // The next allocation scans and lands in a different (empty) arena.
  uint64_t P = A.allocate(64, true);
  EXPECT_GE(P, A.config().ArenaBase + A.arenaBytes());
  EXPECT_GT(A.counters().Resets, 0u);
}

TEST(ArenaTest, PinnedArenasForceFallback) {
  ArenaAllocator A;
  // Pin every arena with one live object, filling the rest of each.
  std::vector<uint64_t> Pins;
  for (unsigned Arena = 0; Arena < 16; ++Arena) {
    Pins.push_back(A.allocate(64, true)); // One pin...
    for (int I = 0; I < 4096 / 64 - 1; ++I)
      A.free(A.allocate(64, true)); // ...rest allocated and freed.
  }
  // All arenas full (alloc pointers at end) and none empty (count >= 1):
  // the allocator degenerates to the general heap — the CFRAC pollution.
  uint64_t P = A.allocate(64, true);
  EXPECT_GE(P, A.config().General.BaseAddress);
  EXPECT_GT(A.counters().FallbackAllocs, 0u);

  // Unpin one arena: the next predicted allocation reuses it.
  A.free(Pins[3]);
  uint64_t Q = A.allocate(64, true);
  EXPECT_EQ(Q, A.config().ArenaBase + 3 * A.arenaBytes());
}

TEST(ArenaTest, ResetReusesArenaFromItsBase) {
  ArenaAllocator A;
  std::vector<uint64_t> Ptrs;
  for (int I = 0; I < 64; ++I)
    Ptrs.push_back(A.allocate(64, true));
  for (uint64_t P : Ptrs)
    A.free(P); // Arena 0 now empty but its alloc pointer is at the end.
  // Next allocation fails the bump, scans, and resets arena 0.
  uint64_t P = A.allocate(64, true);
  EXPECT_EQ(P, A.config().ArenaBase);
}

TEST(ArenaTest, FreeClassifiesByAddressRange) {
  ArenaAllocator A;
  uint64_t ArenaPtr = A.allocate(64, true);
  uint64_t GeneralPtr = A.allocate(64, false);
  A.free(GeneralPtr);
  EXPECT_EQ(A.counters().GeneralFrees, 1u);
  A.free(ArenaPtr);
  EXPECT_EQ(A.counters().ArenaFrees, 1u);
}

TEST(ArenaTest, HeapBytesIncludeArenaArea) {
  ArenaAllocator A;
  EXPECT_EQ(A.heapBytes(), 64u * 1024);
  A.allocate(100, false);
  EXPECT_EQ(A.heapBytes(), 64u * 1024 + 8192);
}

TEST(ArenaTest, LiveBytesSpanBothRegions) {
  ArenaAllocator A;
  uint64_t P1 = A.allocate(100, true);
  uint64_t P2 = A.allocate(200, false);
  EXPECT_EQ(A.liveBytes(), 300u);
  A.free(P1);
  A.free(P2);
  EXPECT_EQ(A.liveBytes(), 0u);
}

TEST(ArenaTest, CustomGeometry) {
  ArenaAllocator::Config Cfg;
  Cfg.AreaBytes = 32 * 1024;
  Cfg.ArenaCount = 4;
  ArenaAllocator A(Cfg);
  EXPECT_EQ(A.arenaBytes(), 8192u);
  uint64_t P = A.allocate(5000, true); // Fits the bigger arena.
  EXPECT_LT(P, Cfg.ArenaBase + Cfg.AreaBytes);
}

TEST(ArenaTest, ArenaBytesCounterTracksPayload) {
  ArenaAllocator A;
  A.allocate(100, true);
  A.allocate(50, true);
  A.allocate(70, false);
  EXPECT_EQ(A.counters().ArenaBytes, 150u);
  EXPECT_EQ(A.counters().GeneralBytes, 70u);
}

TEST(ArenaTest, RandomChurnKeepsCountsConsistent) {
  ArenaAllocator A;
  Rng R(9);
  std::vector<uint64_t> Live;
  for (int I = 0; I < 30000; ++I) {
    if (Live.empty() || R.nextBool(0.52)) {
      Live.push_back(A.allocate(
          static_cast<uint32_t>(R.nextInRange(8, 256)), R.nextBool(0.8)));
    } else {
      size_t Pick = R.nextBelow(Live.size());
      A.free(Live[Pick]);
      Live[Pick] = Live.back();
      Live.pop_back();
    }
  }
  // Invariant: total arena live counts equal live arena pointers.
  unsigned TotalCounts = 0;
  for (unsigned I = 0; I < 16; ++I)
    TotalCounts += A.arenaLiveCount(I);
  unsigned LiveArenaPtrs = 0;
  for (uint64_t P : Live)
    if (P >= A.config().ArenaBase &&
        P < A.config().ArenaBase + A.config().AreaBytes)
      ++LiveArenaPtrs;
  EXPECT_EQ(TotalCounts, LiveArenaPtrs);
}

TEST(MultiArenaTest, SingleBandMatchesPaperAllocator) {
  // One band with the paper's geometry behaves like ArenaAllocator.
  MultiArenaAllocator Multi;
  EXPECT_EQ(Multi.bands(), 1u);
  uint64_t P = Multi.allocate(100, 0);
  EXPECT_LT(P, uint64_t(1) << 30); // In the band area, not the heap.
  EXPECT_EQ(Multi.bandCounters(0).Allocs, 1u);
  Multi.free(P);
  EXPECT_EQ(Multi.bandCounters(0).Frees, 1u);
}

TEST(MultiArenaTest, BandsAreDisjointAddressRanges) {
  MultiArenaAllocator::Config Cfg;
  Cfg.Bands = {{8 * 1024, 2}, {16 * 1024, 4}};
  MultiArenaAllocator Multi(Cfg);
  uint64_t P0 = Multi.allocate(64, 0);
  uint64_t P1 = Multi.allocate(64, 1);
  EXPECT_LT(P0, P1);
  EXPECT_GE(P1 - P0, 8u * 1024 - 64);
  Multi.free(P0);
  Multi.free(P1);
  EXPECT_EQ(Multi.bandCounters(0).Frees, 1u);
  EXPECT_EQ(Multi.bandCounters(1).Frees, 1u);
}

TEST(MultiArenaTest, GeneralBandAndUnknownBandsUseHeap) {
  MultiArenaAllocator Multi;
  uint64_t P1 = Multi.allocate(64, MultiArenaAllocator::GeneralBand);
  uint64_t P2 = Multi.allocate(64, 7); // Out of range.
  EXPECT_GE(P1, uint64_t(1) << 40);
  EXPECT_GE(P2, uint64_t(1) << 40);
  EXPECT_EQ(Multi.generalAllocs(), 2u);
  Multi.free(P1);
  Multi.free(P2);
  EXPECT_EQ(Multi.liveBytes(), 0u);
}

TEST(MultiArenaTest, FullBandFallsBackAndRecovers) {
  MultiArenaAllocator::Config Cfg;
  Cfg.Bands = {{4 * 1024, 2}};
  MultiArenaAllocator Multi(Cfg);
  std::vector<uint64_t> Live;
  for (int I = 0; I < 4096 / 64; ++I)
    Live.push_back(Multi.allocate(64, 0)); // Fills both 2 KB arenas.
  uint64_t Overflow = Multi.allocate(64, 0);
  EXPECT_GE(Overflow, uint64_t(1) << 40);
  EXPECT_GT(Multi.bandCounters(0).Fallbacks, 0u);
  for (uint64_t P : Live)
    Multi.free(P);
  // Both arenas empty again: band allocation resumes.
  uint64_t Back = Multi.allocate(64, 0);
  EXPECT_LT(Back, uint64_t(1) << 30);
  EXPECT_GT(Multi.bandCounters(0).Resets, 0u);
  Multi.free(Back);
  Multi.free(Overflow);
}

TEST(MultiArenaTest, HeapBytesSumBandAreas) {
  MultiArenaAllocator::Config Cfg;
  Cfg.Bands = {{8 * 1024, 2}, {16 * 1024, 4}};
  MultiArenaAllocator Multi(Cfg);
  EXPECT_EQ(Multi.heapBytes(), 24u * 1024);
  Multi.allocate(64, MultiArenaAllocator::GeneralBand);
  EXPECT_EQ(Multi.heapBytes(), 24u * 1024 + 8192);
}
