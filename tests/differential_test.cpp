//===- tests/differential_test.cpp - Cross-allocator property tests --------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Differential testing: random traces are replayed through every allocator
// and through the prediction pipeline under every key policy, checking the
// accounting identities that must hold regardless of configuration.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sim/MultiArenaSimulator.h"
#include "sim/TraceSimulator.h"
#include "support/Random.h"
#include "trace/TraceStats.h"

#include "gtest/gtest.h"

#include <string>
#include <tuple>

using namespace lifepred;

namespace {

/// A random trace with several sites of varied lifetime behaviour.
AllocationTrace randomTrace(uint64_t Seed, size_t Objects) {
  Rng R(Seed);
  AllocationTrace T;
  struct Site {
    uint32_t Chain;
    uint32_t Size;
    uint64_t LifeLo, LifeHi;
    uint32_t Type;
  };
  std::vector<Site> Sites;
  unsigned SiteCount = 3 + static_cast<unsigned>(R.nextBelow(10));
  for (unsigned I = 0; I < SiteCount; ++I) {
    CallChain Chain;
    unsigned Depth = 1 + static_cast<unsigned>(R.nextBelow(6));
    for (unsigned D = 0; D < Depth; ++D)
      Chain.push(static_cast<FunctionId>(R.nextBelow(8)));
    uint64_t Lo = 1 + R.nextBelow(1000);
    uint64_t Hi = Lo + R.nextBelow(200000);
    Sites.push_back({T.internChain(Chain),
                     static_cast<uint32_t>(8 + R.nextBelow(6000)), Lo, Hi,
                     static_cast<uint32_t>(R.nextBelow(4))});
  }
  for (size_t I = 0; I < Objects; ++I) {
    const Site &S = Sites[R.nextBelow(Sites.size())];
    AllocRecord Record;
    Record.Size = S.Size;
    Record.ChainIndex = S.Chain;
    Record.TypeId = S.Type;
    Record.Refs = static_cast<uint32_t>(R.nextBelow(20));
    Record.Lifetime = R.nextBool(0.02)
                          ? NeverFreed
                          : static_cast<uint64_t>(R.nextInRange(
                                static_cast<int64_t>(S.LifeLo),
                                static_cast<int64_t>(S.LifeHi)));
    T.append(Record);
  }
  return T;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(DifferentialTest, AllocatorsAgreeOnLiveBytesAndConservation) {
  AllocationTrace T = randomTrace(GetParam(), 15000);
  TraceStats Stats = computeTraceStats(T);

  BaselineSimResult FF = simulateFirstFit(T);
  BaselineSimResult Bsd = simulateBsd(T);
  SiteDatabase Empty(SiteKeyPolicy::completeChain(), 32768);
  ArenaSimResult Arena = simulateArena(T, Empty, 5.0);

  // Peak live payload is allocator-independent.
  EXPECT_EQ(FF.MaxLiveBytes, Stats.MaxLiveBytes);
  EXPECT_EQ(Bsd.MaxLiveBytes, Stats.MaxLiveBytes);
  EXPECT_EQ(Arena.MaxLiveBytes, Stats.MaxLiveBytes);

  // Every allocator's heap covers its live payload.
  EXPECT_GE(FF.MaxHeapBytes, FF.MaxLiveBytes);
  EXPECT_GE(Bsd.MaxHeapBytes, Bsd.MaxLiveBytes);
  EXPECT_GE(Arena.MaxHeapBytes, Arena.MaxLiveBytes);

  // Operation conservation: everything allocated is freed (the replayer
  // frees at trace end), except never-freed objects.
  EXPECT_EQ(FF.FirstFit.Allocs, Stats.TotalObjects);
  uint64_t NeverFreedCount = 0;
  for (const AllocRecord &R : T.records())
    if (R.Lifetime == NeverFreed)
      ++NeverFreedCount;
  EXPECT_EQ(FF.FirstFit.Frees, Stats.TotalObjects - NeverFreedCount);
}

TEST_P(DifferentialTest, PredictionAccountingIdentities) {
  AllocationTrace T = randomTrace(GetParam() ^ 0xabcd, 10000);
  for (SiteKeyPolicy Policy :
       {SiteKeyPolicy::completeChain(), SiteKeyPolicy::lastN(2),
        SiteKeyPolicy::sizeOnly(), SiteKeyPolicy::typeOnly(),
        SiteKeyPolicy::typeAndSize()}) {
    PipelineResult R = trainAndEvaluate(T, T, Policy);
    const PredictionReport &Report = R.Report;
    // Total bytes and objects match the trace.
    EXPECT_EQ(Report.TotalBytes, T.totalBytes());
    EXPECT_EQ(Report.TotalObjects, T.size());
    // Predicted splits into correct + error.
    EXPECT_LE(Report.PredictedShortBytes + Report.ErrorBytes,
              Report.TotalBytes);
    // Self prediction never errs.
    EXPECT_EQ(Report.ErrorBytes, 0u);
    // Correctly predicted bytes are a subset of actually short bytes.
    EXPECT_LE(Report.PredictedShortBytes, Report.ActualShortBytes);
    // Sites used cannot exceed the database.
    EXPECT_LE(Report.SitesUsed, R.Database.size());
    // The (chain, size) partition refines the size-only partition, and
    // refinement can only help under the all-short rule — so size-only
    // self prediction never beats the complete chain.  (Type partitions
    // are not refined by chains in general, so no such bound is asserted
    // for them.)
    if (Policy.Mode == SiteKeyMode::SizeOnly) {
      PipelineResult Full =
          trainAndEvaluate(T, T, SiteKeyPolicy::completeChain());
      EXPECT_LE(Report.PredictedShortBytes,
                Full.Report.PredictedShortBytes);
    }
  }
}

TEST_P(DifferentialTest, SingleBandMultiArenaMatchesArenaAllocator) {
  AllocationTrace T = randomTrace(GetParam() ^ 0x5151, 12000);
  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  Profile P = profileTrace(T, Policy);
  SiteDatabase Binary = trainDatabase(P, Policy);
  ClassDatabase Banded = trainClassDatabase(P, Policy, {32 * 1024});

  ArenaSimResult A = simulateArena(T, Binary, 5.0);
  MultiArenaSimResult M = simulateMultiArena(T, Banded);

  // One band with the paper's geometry is the paper's allocator: the
  // placement decisions — and therefore heaps and counters — coincide.
  EXPECT_EQ(M.PerBand[0].Allocs, A.Arena.ArenaAllocs);
  EXPECT_EQ(M.PerBand[0].Bytes, A.Arena.ArenaBytes);
  EXPECT_EQ(M.GeneralAllocs, A.Arena.GeneralAllocs);
  EXPECT_EQ(M.MaxHeapBytes, A.MaxHeapBytes);
  EXPECT_EQ(M.General.SearchSteps, A.General.SearchSteps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const ::testing::TestParamInfo<uint64_t> &Info) {
                           return "seed" + std::to_string(Info.param);
                         });
