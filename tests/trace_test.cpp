//===- tests/trace_test.cpp - Trace storage and replay tests ---------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/AllocationTrace.h"
#include "support/Random.h"
#include "trace/TraceBinaryIO.h"
#include "trace/TraceIO.h"
#include "trace/TraceReplayer.h"
#include "trace/TraceStats.h"
#include "verify/TraceFuzzer.h"

#include "gtest/gtest.h"

#include <cstring>
#include <sstream>
#include <vector>

using namespace lifepred;

namespace {

/// Records the replay event sequence for inspection.
class RecordingConsumer : public TraceConsumer {
public:
  struct Event {
    char Kind; // 'A', 'F', or 'E'
    uint64_t Id;
    uint64_t Clock;
  };

  void onAlloc(uint64_t Id, const AllocRecord &, uint64_t Clock) override {
    Events.push_back({'A', Id, Clock});
  }
  void onFree(uint64_t Id, const AllocRecord &, uint64_t Clock) override {
    Events.push_back({'F', Id, Clock});
  }
  void onEnd(uint64_t Clock) override { Events.push_back({'E', 0, Clock}); }

  std::vector<Event> Events;
};

AllocationTrace smallTrace() {
  AllocationTrace T;
  uint32_t Chain = T.internChain(CallChain{1, 2});
  // Object 0: 10 bytes, dies after 15 more bytes are allocated.
  T.append({15, 10, Chain, 3});
  // Object 1: 10 bytes, dies immediately-ish.
  T.append({5, 10, Chain, 1});
  // Object 2: 10 bytes, never freed.
  T.append({NeverFreed, 10, Chain, 2});
  return T;
}

} // namespace

TEST(AllocationTraceTest, InternChainDeduplicates) {
  AllocationTrace T;
  uint32_t A = T.internChain(CallChain{1, 2, 3});
  uint32_t B = T.internChain(CallChain{1, 2, 3});
  uint32_t C = T.internChain(CallChain{1, 2});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(T.chainCount(), 2u);
  EXPECT_EQ(T.chain(A), (CallChain{1, 2, 3}));
}

TEST(AllocationTraceTest, TotalBytes) {
  AllocationTrace T = smallTrace();
  EXPECT_EQ(T.totalBytes(), 30u);
  EXPECT_EQ(T.size(), 3u);
}

TEST(TraceReplayerTest, EventOrderFollowsByteClock) {
  AllocationTrace T = smallTrace();
  RecordingConsumer C;
  replayTrace(T, C);

  // Expected: A0 (clock 10), A1 (clock 20).  Both objects die at clock
  // 25, which allocation 2 (clock 20 -> 30) crosses, so both frees fire
  // before it (ordered by (death clock, id): obj0 then obj1).
  ASSERT_EQ(C.Events.size(), 6u);
  EXPECT_EQ(C.Events[0].Kind, 'A');
  EXPECT_EQ(C.Events[0].Id, 0u);
  EXPECT_EQ(C.Events[0].Clock, 10u);
  EXPECT_EQ(C.Events[1].Kind, 'A');
  EXPECT_EQ(C.Events[1].Id, 1u);
  // Both deaths (clock 25) fire before the clock-30 allocation.
  EXPECT_EQ(C.Events[2].Kind, 'F');
  EXPECT_EQ(C.Events[3].Kind, 'F');
  EXPECT_EQ(C.Events[4].Kind, 'A');
  EXPECT_EQ(C.Events[4].Id, 2u);
  EXPECT_EQ(C.Events[5].Kind, 'E');
  EXPECT_EQ(C.Events[5].Clock, 30u);
}

TEST(TraceReplayerTest, NeverFreedObjectsGetNoFree) {
  AllocationTrace T;
  uint32_t Chain = T.internChain(CallChain{1});
  T.append({NeverFreed, 8, Chain, 0});
  RecordingConsumer C;
  replayTrace(T, C);
  ASSERT_EQ(C.Events.size(), 2u);
  EXPECT_EQ(C.Events[0].Kind, 'A');
  EXPECT_EQ(C.Events[1].Kind, 'E');
}

TEST(TraceReplayerTest, DeathsPastEndDrainBeforeEnd) {
  AllocationTrace T;
  uint32_t Chain = T.internChain(CallChain{1});
  T.append({1000000, 8, Chain, 0}); // Dies long after the trace ends.
  RecordingConsumer C;
  replayTrace(T, C);
  ASSERT_EQ(C.Events.size(), 3u);
  EXPECT_EQ(C.Events[1].Kind, 'F');
  EXPECT_EQ(C.Events[2].Kind, 'E');
}

TEST(TraceReplayerTest, EveryAllocFreedExactlyOnce) {
  AllocationTrace T;
  uint32_t Chain = T.internChain(CallChain{1});
  for (int I = 0; I < 100; ++I)
    T.append({static_cast<uint64_t>((I * 37) % 200 + 1), 16, Chain, 0});
  RecordingConsumer C;
  replayTrace(T, C);
  std::vector<int> Allocs(100, 0), Frees(100, 0);
  for (const auto &E : C.Events) {
    if (E.Kind == 'A')
      ++Allocs[E.Id];
    if (E.Kind == 'F')
      ++Frees[E.Id];
  }
  for (int I = 0; I < 100; ++I) {
    EXPECT_EQ(Allocs[I], 1);
    EXPECT_EQ(Frees[I], 1);
  }
}

TEST(TraceReplayerTest, FreeNeverPrecedesItsAlloc) {
  AllocationTrace T;
  uint32_t Chain = T.internChain(CallChain{1});
  for (int I = 0; I < 50; ++I)
    T.append({1, 16, Chain, 0}); // Every object dies almost immediately.
  RecordingConsumer C;
  replayTrace(T, C);
  std::vector<bool> Born(50, false);
  for (const auto &E : C.Events) {
    if (E.Kind == 'A')
      Born[E.Id] = true;
    if (E.Kind == 'F') {
      EXPECT_TRUE(Born[E.Id]);
    }
  }
}

TEST(TraceStatsTest, PeaksAndTotals) {
  AllocationTrace T = smallTrace();
  T.setNonHeapRefs(6);
  TraceStats S = computeTraceStats(T);
  EXPECT_EQ(S.TotalObjects, 3u);
  EXPECT_EQ(S.TotalBytes, 30u);
  // Objects 0 and 1 are simultaneously live (both die at clock 25 while
  // object 2 arrives at 30): peak 2 objects, 20 bytes.
  EXPECT_EQ(S.MaxLiveObjects, 2u);
  EXPECT_EQ(S.MaxLiveBytes, 20u);
  EXPECT_EQ(S.HeapRefs, 6u);
  EXPECT_DOUBLE_EQ(S.heapRefPercent(), 50.0);
  EXPECT_EQ(S.DistinctChains, 1u);
}

TEST(TraceIOTest, RoundTrip) {
  AllocationTrace T = smallTrace();
  T.setNonHeapRefs(42);
  std::stringstream SS;
  writeTrace(T, SS);
  auto Read = readTrace(SS);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(Read->size(), T.size());
  EXPECT_EQ(Read->chainCount(), T.chainCount());
  EXPECT_EQ(Read->nonHeapRefs(), 42u);
  for (size_t I = 0; I < T.size(); ++I) {
    EXPECT_EQ(Read->records()[I].Size, T.records()[I].Size);
    EXPECT_EQ(Read->records()[I].Lifetime, T.records()[I].Lifetime);
    EXPECT_EQ(Read->records()[I].ChainIndex, T.records()[I].ChainIndex);
    EXPECT_EQ(Read->records()[I].Refs, T.records()[I].Refs);
  }
  EXPECT_EQ(Read->chain(0), T.chain(0));
}

TEST(TraceIOTest, RejectsMalformedInput) {
  {
    std::stringstream SS("not a trace\n");
    EXPECT_FALSE(readTrace(SS).has_value());
  }
  {
    std::stringstream SS("trace v1\nalloc 8 0 never 0\n"); // Chain missing.
    EXPECT_FALSE(readTrace(SS).has_value());
  }
  {
    std::stringstream SS("trace v1\nchain 0 1 2\nalloc 8 0 bogus 0\n");
    EXPECT_FALSE(readTrace(SS).has_value());
  }
  {
    std::stringstream SS("trace v1\nwhatisthis 3\n");
    EXPECT_FALSE(readTrace(SS).has_value());
  }
}

TEST(TraceIOTest, EmptyTraceRoundTrips) {
  AllocationTrace T;
  std::stringstream SS;
  writeTrace(T, SS);
  auto Read = readTrace(SS);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(Read->size(), 0u);
}

TEST(TraceIOTest, TypeIdRoundTrips) {
  AllocationTrace T;
  uint32_t Chain = T.internChain(CallChain{1});
  AllocRecord R;
  R.Lifetime = 100;
  R.Size = 16;
  R.ChainIndex = Chain;
  R.Refs = 2;
  R.TypeId = 77;
  T.append(R);
  R.TypeId = 0; // Untyped records serialize without the field.
  T.append(R);
  std::stringstream SS;
  writeTrace(T, SS);
  auto Read = readTrace(SS);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(Read->records()[0].TypeId, 77u);
  EXPECT_EQ(Read->records()[1].TypeId, 0u);
}

TEST(TraceBinaryIOTest, RoundTrip) {
  AllocationTrace T = smallTrace();
  T.setNonHeapRefs(99);
  {
    AllocRecord R;
    R.Lifetime = 12345;
    R.Size = 64;
    R.ChainIndex = T.internChain(CallChain{9, 8, 7});
    R.Refs = 3;
    R.TypeId = 42;
    T.append(R);
  }
  std::stringstream SS;
  writeTraceBinary(T, SS);
  auto Read = readTraceBinary(SS);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(Read->size(), T.size());
  EXPECT_EQ(Read->chainCount(), T.chainCount());
  EXPECT_EQ(Read->nonHeapRefs(), 99u);
  for (size_t I = 0; I < T.size(); ++I) {
    EXPECT_EQ(Read->records()[I].Lifetime, T.records()[I].Lifetime);
    EXPECT_EQ(Read->records()[I].Size, T.records()[I].Size);
    EXPECT_EQ(Read->records()[I].ChainIndex, T.records()[I].ChainIndex);
    EXPECT_EQ(Read->records()[I].Refs, T.records()[I].Refs);
    EXPECT_EQ(Read->records()[I].TypeId, T.records()[I].TypeId);
  }
  for (size_t I = 0; I < T.chainCount(); ++I)
    EXPECT_EQ(Read->chain(static_cast<uint32_t>(I)),
              T.chain(static_cast<uint32_t>(I)));
}

TEST(TraceBinaryIOTest, RejectsBadMagicAndTruncation) {
  {
    std::stringstream SS("not a binary trace");
    EXPECT_FALSE(readTraceBinary(SS).has_value());
  }
  {
    AllocationTrace T = smallTrace();
    std::stringstream SS;
    writeTraceBinary(T, SS);
    std::string Bytes = SS.str();
    for (size_t Cut :
         {size_t(4), size_t(12), Bytes.size() / 2, Bytes.size() - 3}) {
      std::stringstream Truncated(Bytes.substr(0, Cut));
      EXPECT_FALSE(readTraceBinary(Truncated).has_value())
          << "cut at " << Cut;
    }
  }
}

TEST(TraceBinaryIOTest, EmptyTraceRoundTrips) {
  AllocationTrace T;
  std::stringstream SS;
  writeTraceBinary(T, SS);
  auto Read = readTraceBinary(SS);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(Read->size(), 0u);
  EXPECT_EQ(Read->chainCount(), 0u);
}

TEST(TraceBinaryIOTest, BinarySmallerThanTextAtRealisticMagnitudes) {
  // Realistic traces carry multi-digit lifetimes and refs, where the
  // fixed 24-byte record beats its decimal rendering.
  AllocationTrace T;
  uint32_t Chain = T.internChain(CallChain{1, 2, 3});
  for (int I = 0; I < 1000; ++I) {
    AllocRecord R;
    R.Lifetime = 10000000 + static_cast<uint64_t>(I) * 1000;
    R.Size = 1048;
    R.ChainIndex = Chain;
    R.Refs = 15000;
    R.TypeId = 12;
    T.append(R);
  }
  std::stringstream Text, Binary;
  writeTrace(T, Text);
  writeTraceBinary(T, Binary);
  EXPECT_LT(Binary.str().size(), Text.str().size());
}

TEST(TraceBinaryIOTest, StructuredMutationRoundTrip) {
  // The verify-layer structured fuzzer: pristine round-trips must be
  // byte-faithful, and truncations, bit flips, header splices, and
  // trailing garbage must either parse into a structurally valid trace or
  // be rejected cleanly -- never crash.
  std::string Error;
  BinaryFuzzStats Stats;
  ASSERT_TRUE(fuzzBinaryRoundTrip(/*Seed=*/0xb17f11f, /*Cases=*/6, Error,
                                  &Stats))
      << Error;
  EXPECT_EQ(Stats.Cases, Stats.Accepted + Stats.Rejected);
  // Truncations of a valid stream must be rejected, so both buckets are
  // exercised.
  EXPECT_GT(Stats.Rejected, 0u);
}

TEST(TraceBinaryIOTest, FuzzRandomBytesNeverCrash) {
  Rng R(0xf022);
  for (int Trial = 0; Trial < 200; ++Trial) {
    std::string Bytes;
    size_t Len = R.nextBelow(200);
    for (size_t I = 0; I < Len; ++I)
      Bytes.push_back(static_cast<char>(R.nextBelow(256)));
    // Half the trials start with the valid magic to reach deeper parsing.
    if (Trial % 2 == 0 && Bytes.size() >= 8)
      std::memcpy(Bytes.data(), "LPTRACE1", 8);
    std::stringstream SS(Bytes);
    auto Result = readTraceBinary(SS); // Must not crash or hang.
    (void)Result;
  }
}
