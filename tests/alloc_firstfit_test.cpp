//===- tests/alloc_firstfit_test.cpp - First-fit allocator tests -----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/FirstFitAllocator.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <map>
#include <vector>

using namespace lifepred;

namespace {

/// Checks that [Addr, Addr+Size) ranges of live allocations never overlap.
class OverlapChecker {
public:
  void add(uint64_t Addr, uint32_t Size) {
    auto It = Live.upper_bound(Addr);
    if (It != Live.end()) {
      EXPECT_LE(Addr + Size, It->first) << "overlaps next block";
    }
    if (It != Live.begin()) {
      auto Prev = std::prev(It);
      EXPECT_LE(Prev->first + Prev->second, Addr) << "overlaps prev block";
    }
    Live[Addr] = Size;
  }
  void remove(uint64_t Addr) { Live.erase(Addr); }

private:
  std::map<uint64_t, uint32_t> Live;
};

} // namespace

TEST(FirstFitTest, AllocationsDoNotOverlap) {
  FirstFitAllocator A;
  OverlapChecker Checker;
  Rng R(1);
  std::vector<std::pair<uint64_t, uint32_t>> Live;
  for (int I = 0; I < 20000; ++I) {
    if (Live.empty() || R.nextBool(0.55)) {
      auto Size = static_cast<uint32_t>(R.nextInRange(1, 512));
      uint64_t Addr = A.allocate(Size);
      Checker.add(Addr, Size);
      Live.emplace_back(Addr, Size);
    } else {
      size_t Pick = R.nextBelow(Live.size());
      Checker.remove(Live[Pick].first);
      A.free(Live[Pick].first);
      Live[Pick] = Live.back();
      Live.pop_back();
    }
  }
}

TEST(FirstFitTest, LiveBytesTracksPayload) {
  FirstFitAllocator A;
  uint64_t P1 = A.allocate(100);
  uint64_t P2 = A.allocate(200);
  EXPECT_EQ(A.liveBytes(), 300u);
  A.free(P1);
  EXPECT_EQ(A.liveBytes(), 200u);
  A.free(P2);
  EXPECT_EQ(A.liveBytes(), 0u);
}

TEST(FirstFitTest, HeapGrowsInConfiguredGranularity) {
  FirstFitAllocator::Config Cfg;
  Cfg.GrowthGranularity = 8192;
  FirstFitAllocator A(Cfg);
  A.allocate(100);
  EXPECT_EQ(A.heapBytes(), 8192u);
  EXPECT_EQ(A.maxHeapBytes(), 8192u);
}

TEST(FirstFitTest, LargeRequestGrowsEnough) {
  FirstFitAllocator A;
  uint64_t Addr = A.allocate(100000);
  EXPECT_GE(A.heapBytes(), 100000u);
  EXPECT_EQ(A.heapBytes() % 8192, 0u);
  A.free(Addr);
}

TEST(FirstFitTest, FreedBlockIsReused) {
  FirstFitAllocator A;
  uint64_t P1 = A.allocate(5000);
  uint64_t HeapAfter = A.heapBytes();
  A.free(P1);
  uint64_t P2 = A.allocate(5000);
  EXPECT_EQ(P1, P2); // Same hole, no growth.
  EXPECT_EQ(A.heapBytes(), HeapAfter);
}

TEST(FirstFitTest, CoalescingMergesNeighbours) {
  FirstFitAllocator A;
  // Fill one 8 KB extent with three blocks, then free them all: the free
  // list should collapse to a single block covering the extent.
  uint64_t P1 = A.allocate(2000);
  uint64_t P2 = A.allocate(2000);
  uint64_t P3 = A.allocate(2000);
  A.free(P1);
  A.free(P3);
  EXPECT_GE(A.freeBlockCount(), 2u);
  A.free(P2); // Middle free merges both sides.
  EXPECT_EQ(A.freeBlockCount(), 1u);
  EXPECT_GT(A.counters().Coalesces, 0u);
}

TEST(FirstFitTest, SplitLeavesUsableRemainder) {
  FirstFitAllocator A;
  uint64_t P1 = A.allocate(100);
  uint64_t P2 = A.allocate(100);
  // Both came from splitting the initial 8 KB extent.
  EXPECT_EQ(A.heapBytes(), 8192u);
  EXPECT_GT(A.counters().Splits, 0u);
  A.free(P1);
  A.free(P2);
}

TEST(FirstFitTest, CountersTrackOperations) {
  FirstFitAllocator A;
  uint64_t P = A.allocate(64);
  A.free(P);
  EXPECT_EQ(A.counters().Allocs, 1u);
  EXPECT_EQ(A.counters().Frees, 1u);
  EXPECT_EQ(A.counters().Grows, 1u);
}

TEST(FirstFitTest, AddressOrderedModeUsesLowestFit) {
  FirstFitAllocator::Config Cfg;
  Cfg.Policy = FitPolicy::AddressOrderedFirstFit;
  FirstFitAllocator A(Cfg);
  uint64_t P1 = A.allocate(1000);
  uint64_t P2 = A.allocate(1000);
  uint64_t P3 = A.allocate(1000);
  (void)P2;
  A.free(P1);
  A.free(P3);
  // Address-ordered first fit reuses the lowest hole.
  EXPECT_EQ(A.allocate(1000), P1);
}

TEST(FirstFitTest, RovingPointerResumesPastLastAllocation) {
  FirstFitAllocator::Config Cfg;
  Cfg.Policy = FitPolicy::RovingFirstFit;
  FirstFitAllocator A(Cfg);
  uint64_t P1 = A.allocate(1000);
  uint64_t P2 = A.allocate(1000);
  (void)P2;
  A.free(P1);
  // The rover sits past P2; the next allocation takes fresh trailing space
  // rather than wrapping back to P1's hole (address-ordered mode would
  // return P1 — see AddressOrderedModeUsesLowestFit).
  uint64_t P3 = A.allocate(1000);
  EXPECT_NE(P3, P1);
  EXPECT_GT(P3, P2);
}

TEST(FirstFitTest, StressRandomWorkloadInvariants) {
  for (uint64_t Seed : {11u, 22u, 33u}) {
    FirstFitAllocator A;
    Rng R(Seed);
    std::vector<std::pair<uint64_t, uint32_t>> Live;
    uint64_t ExpectedLive = 0;
    for (int I = 0; I < 30000; ++I) {
      if (Live.empty() || R.nextBool(0.5)) {
        auto Size = static_cast<uint32_t>(R.nextInRange(1, 2048));
        Live.emplace_back(A.allocate(Size), Size);
        ExpectedLive += Size;
      } else {
        size_t Pick = R.nextBelow(Live.size());
        A.free(Live[Pick].first);
        ExpectedLive -= Live[Pick].second;
        Live[Pick] = Live.back();
        Live.pop_back();
      }
      ASSERT_EQ(A.liveBytes(), ExpectedLive);
      ASSERT_GE(A.heapBytes(), A.liveBytes());
    }
    // Free everything: the heap must coalesce back to one block per region.
    for (auto &[Addr, Size] : Live)
      A.free(Addr);
    EXPECT_EQ(A.liveBytes(), 0u);
    EXPECT_EQ(A.freeBlockCount(), 1u);
  }
}

TEST(FitPolicyTest, BestFitChoosesTightestHole) {
  FirstFitAllocator::Config Cfg;
  Cfg.Policy = FitPolicy::BestFit;
  FirstFitAllocator A(Cfg);
  // Carve holes of 3000 and 1000 payload bytes with live separators.
  uint64_t Big = A.allocate(3000);
  uint64_t Sep1 = A.allocate(64);
  uint64_t Small = A.allocate(1000);
  uint64_t Sep2 = A.allocate(64);
  (void)Sep1;
  (void)Sep2;
  A.free(Big);
  A.free(Small);
  // A 900-byte request fits both; best fit must take the 1000-byte hole
  // even though the 3000-byte one comes first in address order.
  EXPECT_EQ(A.allocate(900), Small);
}

TEST(FitPolicyTest, BestFitPerfectFitStopsEarly) {
  FirstFitAllocator::Config Cfg;
  Cfg.Policy = FitPolicy::BestFit;
  FirstFitAllocator A(Cfg);
  uint64_t P1 = A.allocate(1000);
  uint64_t Sep = A.allocate(64);
  (void)Sep;
  A.free(P1);
  // Same rounded block size: reuses the hole exactly.
  EXPECT_EQ(A.allocate(1000), P1);
}

TEST(FitPolicyTest, AllPoliciesKeepInvariantsUnderChurn) {
  for (FitPolicy Policy :
       {FitPolicy::RovingFirstFit, FitPolicy::AddressOrderedFirstFit,
        FitPolicy::BestFit}) {
    FirstFitAllocator::Config Cfg;
    Cfg.Policy = Policy;
    FirstFitAllocator A(Cfg);
    Rng R(99);
    std::vector<uint64_t> Live;
    for (int I = 0; I < 8000; ++I) {
      if (Live.empty() || R.nextBool(0.5)) {
        Live.push_back(
            A.allocate(static_cast<uint32_t>(R.nextInRange(1, 1024))));
      } else {
        size_t Pick = R.nextBelow(Live.size());
        A.free(Live[Pick]);
        Live[Pick] = Live.back();
        Live.pop_back();
      }
      ASSERT_GE(A.heapBytes(), A.liveBytes());
    }
    for (uint64_t P : Live)
      A.free(P);
    EXPECT_EQ(A.liveBytes(), 0u);
    EXPECT_EQ(A.freeBlockCount(), 1u);
  }
}
